"""Process-safe metrics registry: counters, gauges, histograms.

The parallel sweep engine runs sessions in pool workers, so a single
shared registry object is impossible — worker processes do not share
memory with the parent. The model here is the one Prometheus clients
use for multi-process setups: each process accumulates into its own
:class:`MetricsRegistry`, serializes it with :meth:`MetricsRegistry.snapshot`
(plain dicts, picklable), and the parent folds every snapshot in with
:meth:`MetricsRegistry.merge`. Within one process a single lock keeps
concurrent updates (e.g. from executor callback threads) consistent.

Merge semantics:

- **counters** add;
- **histograms** add bucket-wise (bucket bounds must match);
- **gauges** overwrite (last merged value wins) — a gauge is a
  point-in-time reading, not an accumulation.

Histograms use *fixed* bucket bounds chosen at creation
(:data:`DEFAULT_SECONDS_BUCKETS` suits per-unit wall times), so merging
across processes is exact — no rebinning, no approximation.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STORE_HITS_METRIC",
    "STORE_MISSES_METRIC",
    "STORE_BYTES_READ_METRIC",
    "STORE_BYTES_WRITTEN_METRIC",
    "STORE_CORRUPT_METRIC",
    "STORE_UNCACHEABLE_METRIC",
    "SHM_BLOCKS_METRIC",
    "SHM_BYTES_METRIC",
    "SHM_ATTACHED_WORKERS_METRIC",
]

#: Bucket upper bounds (seconds) for wall-time histograms; +Inf implied.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

# Metric names for the incremental sweep machinery. The session store
# (repro.experiments.store) and the sweep engine populate these when a
# registry is attached; they live here so every layer agrees on the
# names without importing the engine.
STORE_HITS_METRIC = "repro_store_hits_total"
STORE_MISSES_METRIC = "repro_store_misses_total"
STORE_BYTES_READ_METRIC = "repro_store_bytes_read_total"
STORE_BYTES_WRITTEN_METRIC = "repro_store_bytes_written_total"
STORE_CORRUPT_METRIC = "repro_store_corrupt_entries_total"
STORE_UNCACHEABLE_METRIC = "repro_store_uncacheable_specs_total"
SHM_BLOCKS_METRIC = "repro_sweep_shm_blocks"
SHM_BYTES_METRIC = "repro_sweep_shm_bytes"
SHM_ATTACHED_WORKERS_METRIC = "repro_sweep_shm_attached_workers_total"


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(
            f"metric name must be non-empty and [a-zA-Z0-9_:], got {name!r}"
        )
    if name[0].isdigit():
        raise ValueError(f"metric name cannot start with a digit: {name!r}")
    return name


class Counter:
    """Monotonically increasing count (sessions completed, cache hits...)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down (workers in flight, pool size...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bound histogram (per-unit wall time, batch sizes...).

    ``bounds`` are the finite upper bucket edges in increasing order; an
    implicit +Inf bucket catches the overflow, so ``counts`` has
    ``len(bounds) + 1`` entries. ``observe`` files each sample into the
    first bucket whose bound is >= the sample (Prometheus ``le``
    semantics).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value

    @property
    def count(self) -> int:
        """Total number of samples observed."""
        return sum(self.counts)


class MetricsRegistry:
    """Named metrics with get-or-create access, snapshot, and merge.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered (so call sites need no bookkeeping)
    and raise :class:`TypeError` when the name is registered as a
    different kind.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested {cls.__name__}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """Get or create a fixed-bound histogram."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[object]:
        """The registered metric, or None."""
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter or gauge, or ``default`` if absent.

        Sweeps increment their failure-policy counters lazily (a clean
        run never touches them), so callers asserting on "how many
        retries/skips happened" need a total that reads 0 for a metric
        that was never created.
        """
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; read counts/sum instead")
        return float(metric.value)  # type: ignore[union-attr]

    def metrics(self) -> List[object]:
        """All registered metrics, sorted by name (stable output order)."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # -- cross-process plumbing -----------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Picklable dump of every metric (for the pool boundary)."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for name, metric in self._metrics.items():
                entry: Dict[str, object] = {
                    "kind": metric.kind,
                    "help": metric.help,
                }
                if isinstance(metric, Histogram):
                    entry["bounds"] = list(metric.bounds)
                    entry["counts"] = list(metric.counts)
                    entry["sum"] = metric.sum
                else:
                    entry["value"] = metric.value  # type: ignore[union-attr]
                out[name] = entry
        return out

    def merge(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the snapshot's
        value. Unknown names are created on the fly, so a parent can
        merge worker snapshots into a completely fresh registry.
        """
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "counter":
                self.counter(name, str(entry.get("help", ""))).inc(
                    float(entry["value"])  # type: ignore[arg-type]
                )
            elif kind == "gauge":
                self.gauge(name, str(entry.get("help", ""))).set(
                    float(entry["value"])  # type: ignore[arg-type]
                )
            elif kind == "histogram":
                bounds = tuple(entry["bounds"])  # type: ignore[arg-type]
                hist = self.histogram(name, str(entry.get("help", "")), buckets=bounds)
                if hist.bounds != bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ: "
                        f"{hist.bounds} vs {bounds}"
                    )
                with self._lock:
                    for i, count in enumerate(entry["counts"]):  # type: ignore[arg-type]
                        hist.counts[i] += int(count)
                    hist.sum += float(entry["sum"])  # type: ignore[arg-type]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def merge_all(
        self, snapshots: Iterable[Mapping[str, Mapping[str, object]]]
    ) -> None:
        """Merge several snapshots in the given order."""
        for snapshot in snapshots:
            self.merge(snapshot)
