"""Process-safe metrics registry: counters, gauges, histograms.

The parallel sweep engine runs sessions in pool workers, so a single
shared registry object is impossible — worker processes do not share
memory with the parent. The model here is the one Prometheus clients
use for multi-process setups: each process accumulates into its own
:class:`MetricsRegistry`, serializes it with :meth:`MetricsRegistry.snapshot`
(plain dicts, picklable), and the parent folds every snapshot in with
:meth:`MetricsRegistry.merge`. Within one process a single lock keeps
concurrent updates (e.g. from executor callback threads) consistent.

Merge semantics:

- **counters** add;
- **histograms** add bucket-wise (bucket bounds must match);
- **gauges** overwrite (last merged value wins) — a gauge is a
  point-in-time reading, not an accumulation.

Histograms use *fixed* bucket bounds chosen at creation
(:data:`DEFAULT_SECONDS_BUCKETS` suits per-unit wall times), so merging
across processes is exact — no rebinning, no approximation.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "STORE_HITS_METRIC",
    "STORE_MISSES_METRIC",
    "STORE_BYTES_READ_METRIC",
    "STORE_BYTES_WRITTEN_METRIC",
    "STORE_CORRUPT_METRIC",
    "STORE_UNCACHEABLE_METRIC",
    "SHM_BLOCKS_METRIC",
    "SHM_BYTES_METRIC",
    "SHM_ATTACHED_WORKERS_METRIC",
    "LEASES_CLAIMED_METRIC",
    "LEASES_RECLAIMED_METRIC",
    "LEASE_WAIT_SECONDS_METRIC",
    "STORE_LOOKUP_SECONDS_METRIC",
    "STORE_WRITE_SECONDS_METRIC",
    "SHM_PUBLISH_SECONDS_METRIC",
    "RSS_BYTES_METRIC",
    "CPU_PERCENT_METRIC",
]

#: Bucket upper bounds (seconds) for wall-time histograms; +Inf implied.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

# Metric names for the incremental sweep machinery. The session store
# (repro.experiments.store) and the sweep engine populate these when a
# registry is attached; they live here so every layer agrees on the
# names without importing the engine.
STORE_HITS_METRIC = "repro_store_hits_total"
STORE_MISSES_METRIC = "repro_store_misses_total"
STORE_BYTES_READ_METRIC = "repro_store_bytes_read_total"
STORE_BYTES_WRITTEN_METRIC = "repro_store_bytes_written_total"
STORE_CORRUPT_METRIC = "repro_store_corrupt_entries_total"
STORE_UNCACHEABLE_METRIC = "repro_store_uncacheable_specs_total"
SHM_BLOCKS_METRIC = "repro_sweep_shm_blocks"
SHM_BYTES_METRIC = "repro_sweep_shm_bytes"
SHM_ATTACHED_WORKERS_METRIC = "repro_sweep_shm_attached_workers_total"
# Multi-host lease protocol (populated by the leasing executor backend).
LEASES_CLAIMED_METRIC = "repro_sweep_leases_claimed_total"
LEASES_RECLAIMED_METRIC = "repro_sweep_leases_reclaimed_total"
LEASE_WAIT_SECONDS_METRIC = "repro_sweep_lease_wait_seconds"
# Timer histograms around the store/shm hot spots (populated through
# MetricsRegistry.timer by the sweep engine).
STORE_LOOKUP_SECONDS_METRIC = "repro_store_lookup_seconds"
STORE_WRITE_SECONDS_METRIC = "repro_store_write_seconds"
SHM_PUBLISH_SECONDS_METRIC = "repro_sweep_shm_publish_seconds"
# Resource time series fed by the pipeline's background sampler.
RSS_BYTES_METRIC = "repro_process_rss_bytes"
CPU_PERCENT_METRIC = "repro_process_cpu_percent"

#: Default ring-buffer capacity for time-series metrics (~8 minutes of
#: samples at the sampler's default 0.5 s cadence).
DEFAULT_SERIES_CAPACITY = 1024


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(
            f"metric name must be non-empty and [a-zA-Z0-9_:], got {name!r}"
        )
    if name[0].isdigit():
        raise ValueError(f"metric name cannot start with a digit: {name!r}")
    return name


def _check_labels(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    """Normalize a label mapping to a sorted tuple of (name, value) pairs.

    Label *names* follow metric-name rules; label *values* are arbitrary
    strings — scheme aliases like ``cava-p123`` (or worse) are legal, and
    the Prometheus exporter escapes them at render time.
    """
    if not labels:
        return ()
    pairs = []
    for key in sorted(labels):
        _check_name(key)
        pairs.append((key, str(labels[key])))
    return tuple(pairs)


class Counter:
    """Monotonically increasing count (sessions completed, cache hits...)."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down (workers in flight, pool size...)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bound histogram (per-unit wall time, batch sizes...).

    ``bounds`` are the finite upper bucket edges in increasing order; an
    implicit +Inf bucket catches the overflow, so ``counts`` has
    ``len(bounds) + 1`` entries. ``observe`` files each sample into the
    first bucket whose bound is >= the sample (Prometheus ``le``
    semantics).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value

    @property
    def count(self) -> int:
        """Total number of samples observed."""
        return sum(self.counts)


class TimeSeries:
    """Bounded (t, value) ring buffer — live resource/progress telemetry.

    The background resource sampler appends one point per tick; the ring
    drops the oldest points past ``capacity``, so a long sweep never
    accumulates unbounded history. The Prometheus exporter renders the
    *latest* point as a gauge (a scrape is a point-in-time read anyway);
    the Chrome-trace exporter renders the whole ring as counter events.
    """

    kind = "timeseries"

    def __init__(
        self,
        name: str,
        help: str = "",
        capacity: int = DEFAULT_SERIES_CAPACITY,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"time-series capacity must be >= 1, got {capacity}")
        self.name = _check_name(name)
        self.help = help
        self.labels = _check_labels(labels)
        self.capacity = int(capacity)
        self.points: Deque[Tuple[float, float]] = deque(maxlen=self.capacity)

    def observe(self, value: float, t: Optional[float] = None) -> None:
        """Append one sample (``t`` defaults to the wall clock now)."""
        self.points.append(
            (time.time() if t is None else float(t), float(value))
        )

    @property
    def value(self) -> float:
        """The most recent sample's value (0.0 when empty)."""
        return self.points[-1][1] if self.points else 0.0


class _TimerHandle:
    """Context manager returned by :meth:`MetricsRegistry.timer`."""

    __slots__ = ("_histogram", "_start", "elapsed_s")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0
        #: Wall seconds of the timed block, available after exit.
        self.elapsed_s = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        self._histogram.observe(self.elapsed_s)


def _storage_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Registry-internal key: unique per (name, label set), stable order."""
    if not labels:
        return name
    return name + "\x00" + "\x00".join(f"{k}\x01{v}" for k, v in labels)


class MetricsRegistry:
    """Named metrics with get-or-create access, snapshot, and merge.

    ``counter``/``gauge``/``histogram`` return the existing metric when
    the name is already registered (so call sites need no bookkeeping)
    and raise :class:`TypeError` when the name is registered as a
    different kind.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(
        self,
        cls,
        name: str,
        help: str,
        labels: Optional[Mapping[str, str]] = None,
        **kwargs,
    ):
        key = _storage_key(name, _check_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested {cls.__name__}"
                    )
                return existing
            metric = cls(name, help, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labels=labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        """Get or create a fixed-bound histogram."""
        return self._get_or_create(
            Histogram, name, help, labels=labels, buckets=buckets
        )

    def timeseries(
        self,
        name: str,
        help: str = "",
        capacity: int = DEFAULT_SERIES_CAPACITY,
        labels: Optional[Mapping[str, str]] = None,
    ) -> TimeSeries:
        """Get or create a bounded time-series ring buffer."""
        return self._get_or_create(
            TimeSeries, name, help, labels=labels, capacity=capacity
        )

    def timer(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> _TimerHandle:
        """Context manager that times its block into a histogram.

        The one-line idiom for wall-timing a code region into sweep
        telemetry::

            with registry.timer(STORE_LOOKUP_SECONDS_METRIC, "store scan"):
                partition_the_grid()

        The handle exposes ``elapsed_s`` after exit for call sites that
        also need the raw number.
        """
        return _TimerHandle(self.histogram(name, help, buckets=buckets, labels=labels))

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[object]:
        """The registered metric, or None."""
        key = _storage_key(name, _check_labels(labels))
        with self._lock:
            return self._metrics.get(key)

    def value(
        self,
        name: str,
        default: float = 0.0,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Current value of a counter or gauge, or ``default`` if absent.

        Sweeps increment their failure-policy counters lazily (a clean
        run never touches them), so callers asserting on "how many
        retries/skips happened" need a total that reads 0 for a metric
        that was never created.
        """
        key = _storage_key(name, _check_labels(labels))
        with self._lock:
            metric = self._metrics.get(key)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; read counts/sum instead")
        return float(metric.value)  # type: ignore[union-attr]

    def metrics(self) -> List[object]:
        """All registered metrics, sorted by (name, labels) — stable output
        order, with every label set of one family adjacent."""
        with self._lock:
            return sorted(
                self._metrics.values(), key=lambda m: (m.name, m.labels)
            )

    # -- cross-process plumbing -----------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Picklable dump of every metric (for the pool boundary).

        Keys are registry storage keys (the bare metric name for
        unlabeled metrics); each entry carries ``name`` and ``labels``
        explicitly so :meth:`merge` never parses keys.
        """
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for key, metric in self._metrics.items():
                entry: Dict[str, object] = {
                    "kind": metric.kind,
                    "name": metric.name,
                    "help": metric.help,
                }
                if metric.labels:
                    entry["labels"] = [list(pair) for pair in metric.labels]
                if isinstance(metric, Histogram):
                    entry["bounds"] = list(metric.bounds)
                    entry["counts"] = list(metric.counts)
                    entry["sum"] = metric.sum
                elif isinstance(metric, TimeSeries):
                    entry["capacity"] = metric.capacity
                    entry["points"] = [list(point) for point in metric.points]
                else:
                    entry["value"] = metric.value  # type: ignore[union-attr]
                out[key] = entry
        return out

    def merge(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the snapshot's
        value; time series interleave points by timestamp (ring capacity
        still bounds the result). Unknown names are created on the fly,
        so a parent can merge worker snapshots into a completely fresh
        registry.
        """
        for key, entry in snapshot.items():
            kind = entry["kind"]
            name = str(entry.get("name", key))
            help_text = str(entry.get("help", ""))
            labels = {k: v for k, v in entry.get("labels", [])} or None
            if kind == "counter":
                self.counter(name, help_text, labels=labels).inc(
                    float(entry["value"])  # type: ignore[arg-type]
                )
            elif kind == "gauge":
                self.gauge(name, help_text, labels=labels).set(
                    float(entry["value"])  # type: ignore[arg-type]
                )
            elif kind == "histogram":
                bounds = tuple(entry["bounds"])  # type: ignore[arg-type]
                hist = self.histogram(
                    name, help_text, buckets=bounds, labels=labels
                )
                if hist.bounds != bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ: "
                        f"{hist.bounds} vs {bounds}"
                    )
                with self._lock:
                    for i, count in enumerate(entry["counts"]):  # type: ignore[arg-type]
                        hist.counts[i] += int(count)
                    hist.sum += float(entry["sum"])  # type: ignore[arg-type]
            elif kind == "timeseries":
                series = self.timeseries(
                    name,
                    help_text,
                    capacity=int(entry.get("capacity", DEFAULT_SERIES_CAPACITY)),
                    labels=labels,
                )
                with self._lock:
                    merged = sorted(
                        list(series.points)
                        + [(float(t), float(v)) for t, v in entry["points"]]  # type: ignore[union-attr]
                    )
                    series.points.clear()
                    series.points.extend(merged[-series.capacity:])
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def merge_all(
        self, snapshots: Iterable[Mapping[str, Mapping[str, object]]]
    ) -> None:
        """Merge several snapshots in the given order."""
        for snapshot in snapshots:
            self.merge(snapshot)
