"""Pipeline observability plane: timeline exports, resource sampling,
live progress, and metrics serving.

:mod:`repro.telemetry.spans` records *where time went*; this module
turns those recordings (plus the metrics registry) into the three
consumer-facing surfaces:

- **Chrome trace-event JSON** (:func:`chrome_trace`) — load the file in
  Perfetto / ``chrome://tracing`` and see the scheduler, every worker,
  and every batch stage on their own lanes (``repro run/compare
  --profile out.json``);
- **live terminal dashboard** (:class:`ProgressBoard` writes,
  :func:`render_top` draws — ``repro top <metrics-dir>``) — units
  done/cached/failed, sessions/s, ETA, per-scheme stage breakdown,
  refreshed while a sweep runs in another process;
- **Prometheus HTTP endpoint** (:class:`MetricsServer`, ``repro compare
  --serve-metrics PORT``) — the scrape surface the fleet simulator will
  reuse; renders the same registry the ``--metrics-out`` dump does.

A background :class:`ResourceSampler` feeds per-process RSS and CPU%
time series (ring buffers in the registry) that export both ways:
latest-value gauges in Prometheus, counter tracks in the Chrome trace.

Stage-name vocabulary (the ``(worker, unit, stage)`` timeline key):

======================  ================================================
span name               recorded by
======================  ================================================
``sweep.plan``          scheduler: spec validation + fault perturbation
``store.partition``     scheduler: cached-vs-missing store scan
``shm.publish``         scheduler: shared-memory data-plane packing
``pool.spawn``          scheduler: process-pool construction
``sweep.drain``         scheduler: the submit/consume event loop
``sweep.merge``         scheduler: result assembly + snapshot merging
``shm.attach``          worker initializer: data-plane attach
``unit.run``            worker: one (spec, trace-batch) work unit
``unit.batch``          worker: the unit's lockstep batch-engine run
``session.scalar``      worker: one scalar-path session
``batch.prepare``       batch engine: decider + stacked-link build
``batch.estimate``      lockstep loop: bandwidth prediction (aggregate)
``batch.decide``        lockstep loop: level selection (aggregate)
``batch.advance``       lockstep loop: download + state update (aggregate)
======================  ================================================
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.telemetry.exporters import registry_to_prometheus
from repro.telemetry.metrics import (
    CPU_PERCENT_METRIC,
    RSS_BYTES_METRIC,
    MetricsRegistry,
    TimeSeries,
)

__all__ = [
    "SPAN_SWEEP_PLAN",
    "SPAN_STORE_PARTITION",
    "SPAN_SHM_PUBLISH",
    "SPAN_POOL_SPAWN",
    "SPAN_SWEEP_DRAIN",
    "SPAN_SWEEP_MERGE",
    "SPAN_LEASE_CLAIM",
    "SPAN_LEASE_RECLAIM",
    "SPAN_STORE_MERGE",
    "SPAN_SHM_ATTACH",
    "SPAN_UNIT_RUN",
    "SPAN_UNIT_BATCH",
    "SPAN_SESSION_SCALAR",
    "SPAN_FLEET_PLAN",
    "SPAN_FLEET_DRAIN",
    "SPAN_FLEET_MERGE",
    "SPAN_FLEET_EDGE",
    "STAGE_PREPARE",
    "STAGE_ESTIMATE",
    "STAGE_DECIDE",
    "STAGE_ADVANCE",
    "chrome_trace",
    "write_chrome_trace",
    "stage_breakdown",
    "span_totals",
    "ResourceSampler",
    "MetricsServer",
    "ProgressBoard",
    "load_progress",
    "render_top",
]

# Scheduler-side spans.
SPAN_SWEEP_PLAN = "sweep.plan"
SPAN_STORE_PARTITION = "store.partition"
SPAN_SHM_PUBLISH = "shm.publish"
SPAN_POOL_SPAWN = "pool.spawn"
SPAN_SWEEP_DRAIN = "sweep.drain"
SPAN_SWEEP_MERGE = "sweep.merge"
# Multi-host lease protocol spans (recorded by the leasing executor:
# claim brackets one leased unit's compute, reclaim one stale-lease
# steal, store.merge the final read-back of the full grid).
SPAN_LEASE_CLAIM = "lease.claim"
SPAN_LEASE_RECLAIM = "lease.reclaim"
SPAN_STORE_MERGE = "store.merge"
# Worker-side spans.
SPAN_SHM_ATTACH = "shm.attach"
SPAN_UNIT_RUN = "unit.run"
SPAN_UNIT_BATCH = "unit.batch"
SPAN_SESSION_SCALAR = "session.scalar"
# Fleet-simulator spans (parent-side except fleet.edge, which is
# recorded from each worker's measured wall/cpu time).
SPAN_FLEET_PLAN = "fleet.plan"
SPAN_FLEET_DRAIN = "fleet.drain"
SPAN_FLEET_MERGE = "fleet.merge"
SPAN_FLEET_EDGE = "fleet.edge"
# Batch-engine stages (aggregate spans, cat="stage").
STAGE_PREPARE = "batch.prepare"
STAGE_ESTIMATE = "batch.estimate"
STAGE_DECIDE = "batch.decide"
STAGE_ADVANCE = "batch.advance"


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------


def chrome_trace(
    spans: Sequence[Mapping[str, object]],
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Render stitched spans (plus registry time series) as a Chrome trace.

    Returns the trace-event JSON object format: complete (``"X"``)
    events for spans and counter (``"C"``) events for every
    :class:`~repro.telemetry.metrics.TimeSeries` in ``registry``.
    Each distinct span ``track`` (scheduler, worker-<pid>, ...) becomes
    its own named process lane, so Perfetto shows the scheduler and
    every worker stacked, with span nesting derived from the time
    intervals recorded on one lane.

    Timestamps are microseconds relative to the earliest event, so the
    file is small and stable to diff modulo durations.
    """
    events: List[Dict[str, object]] = []
    track_pids: Dict[str, int] = {}

    def pid_for(track: str) -> int:
        pid = track_pids.get(track)
        if pid is None:
            pid = len(track_pids) + 1
            track_pids[track] = pid
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
        return pid

    starts = [float(span["start_s"]) for span in spans]
    series: List[TimeSeries] = []
    if registry is not None:
        series = [m for m in registry.metrics() if isinstance(m, TimeSeries)]
        for metric in series:
            starts.extend(t for t, _v in metric.points)
    if not starts:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(starts)

    for span in spans:
        meta = dict(span.get("meta") or {})
        meta["cpu_ms"] = round(float(span.get("cpu_s", 0.0)) * 1e3, 3)
        events.append(
            {
                "ph": "X",
                "name": str(span["name"]),
                "cat": str(span.get("cat") or "span"),
                "ts": round((float(span["start_s"]) - t0) * 1e6, 1),
                "dur": round(float(span["dur_s"]) * 1e6, 1),
                "pid": pid_for(str(span.get("track") or "main")),
                "tid": 0,
                "args": meta,
            }
        )
    for metric in series:
        label = ",".join(f"{k}={v}" for k, v in metric.labels)
        name = f"{metric.name}{{{label}}}" if label else metric.name
        pid = pid_for("resources")
        for t, value in metric.points:
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "ts": round((t - t0) * 1e6, 1),
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
    events.sort(key=lambda e: (e.get("ts", -1), e.get("pid", 0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Sequence[Mapping[str, object]],
    path: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write :func:`chrome_trace` output to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(spans, registry)) + "\n")
    return path


# ----------------------------------------------------------------------
# Aggregations (repro top, bench spans block)
# ----------------------------------------------------------------------


def span_totals(
    spans: Iterable[Mapping[str, object]],
) -> Dict[str, Dict[str, float]]:
    """Total wall/CPU seconds and entry count per span name."""
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        entry = totals.setdefault(
            str(span["name"]), {"wall_s": 0.0, "cpu_s": 0.0, "count": 0}
        )
        entry["wall_s"] += float(span.get("dur_s", 0.0))
        entry["cpu_s"] += float(span.get("cpu_s", 0.0))
        entry["count"] += int(span.get("meta", {}).get("count", 1) or 1)
    return totals


def stage_breakdown(
    spans: Iterable[Mapping[str, object]],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-scheme stage cost: ``{scheme: {stage: {wall_s, cpu_s, count}}}``.

    Reads the aggregate ``cat="stage"`` spans the batch engine emits
    (each tagged with its unit's scheme); the per-scheme view is what
    the encoding-ladder optimizer needs to attribute sweep budget.
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for span in spans:
        if span.get("cat") != "stage":
            continue
        meta = span.get("meta") or {}
        scheme = str(meta.get("scheme", "(all)"))
        entry = out.setdefault(scheme, {}).setdefault(
            str(span["name"]), {"wall_s": 0.0, "cpu_s": 0.0, "count": 0}
        )
        entry["wall_s"] += float(span.get("dur_s", 0.0))
        entry["cpu_s"] += float(span.get("cpu_s", 0.0))
        entry["count"] += int(meta.get("count", 1) or 1)
    return out


# ----------------------------------------------------------------------
# Background resource sampler
# ----------------------------------------------------------------------

_PROC_AVAILABLE = os.path.isdir("/proc/self")


def _clock_ticks_per_s() -> float:
    try:
        return float(os.sysconf("SC_CLK_TCK"))
    except (AttributeError, ValueError, OSError):
        return 100.0


def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (AttributeError, ValueError, OSError):
        return 4096


def _read_proc_sample(pid: int) -> Optional[Dict[str, float]]:
    """RSS bytes + cumulative CPU ticks of one process, via /proc."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            raw = fh.read().decode("ascii", "replace")
        with open(f"/proc/{pid}/statm", "rb") as fh:
            statm = fh.read().split()
    except OSError:
        return None
    # comm (field 2) may contain spaces/parens; fields resume after the
    # last closing paren.
    rest = raw.rsplit(")", 1)[-1].split()
    if len(rest) < 13 or len(statm) < 2:
        return None
    utime, stime = float(rest[11]), float(rest[12])  # fields 14/15, 1-based
    return {
        "rss_bytes": float(int(statm[1]) * _page_size()),
        "cpu_ticks": utime + stime,
    }


def _child_pids(pid: int) -> List[int]:
    """Direct children of ``pid`` (pool workers), via /proc task lists."""
    children: List[int] = []
    task_dir = f"/proc/{pid}/task"
    try:
        tids = os.listdir(task_dir)
    except OSError:
        return children
    for tid in tids:
        try:
            with open(f"{task_dir}/{tid}/children", "rb") as fh:
                children.extend(int(c) for c in fh.read().split())
        except (OSError, ValueError):
            continue
    return children


class ResourceSampler:
    """Background thread feeding per-process RSS/CPU time series.

    Samples this process and (optionally) its direct children — the pool
    workers — every ``interval_s``, appending to
    :data:`~repro.telemetry.metrics.RSS_BYTES_METRIC` /
    :data:`~repro.telemetry.metrics.CPU_PERCENT_METRIC` time series
    labeled ``{pid, role}``. CPU% is the utime+stime delta between
    consecutive samples, so the first sample of each pid records RSS
    only. On platforms without ``/proc`` the sampler degrades to RSS of
    the current process via :mod:`resource`.

    Use as a context manager around the instrumented region::

        with ResourceSampler(registry):
            engine.run_specs(...)
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 0.5,
        include_children: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.registry = registry
        self.interval_s = interval_s
        self.include_children = include_children
        self._pid = os.getpid()
        self._ticks_per_s = _clock_ticks_per_s()
        self._prev: Dict[int, Dict[str, float]] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- sampling -------------------------------------------------------

    def _record(self, pid: int, role: str, now: float) -> None:
        sample = _read_proc_sample(pid)
        if sample is None:
            return
        labels = {"pid": str(pid), "role": role}
        self.registry.timeseries(
            RSS_BYTES_METRIC, "resident set size per process", labels=labels
        ).observe(sample["rss_bytes"], t=now)
        prev = self._prev.get(pid)
        if prev is not None and now > prev["t"]:
            cpu_pct = (
                (sample["cpu_ticks"] - prev["cpu_ticks"])
                / self._ticks_per_s
                / (now - prev["t"])
                * 100.0
            )
            self.registry.timeseries(
                CPU_PERCENT_METRIC, "CPU utilization per process (%)", labels=labels
            ).observe(max(cpu_pct, 0.0), t=now)
        self._prev[pid] = {"t": now, "cpu_ticks": sample["cpu_ticks"]}

    def sample_once(self) -> None:
        """Take one sample of the parent (and children) right now."""
        now = time.time()
        if not _PROC_AVAILABLE:
            try:
                import resource as _resource

                rss_kb = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
            except Exception:  # noqa: BLE001 - sampling must never raise
                return
            self.registry.timeseries(
                RSS_BYTES_METRIC,
                "resident set size per process",
                labels={"pid": str(self._pid), "role": "parent"},
            ).observe(float(rss_kb) * 1024.0, t=now)
            return
        self._record(self._pid, "parent", now)
        if self.include_children:
            for child in _child_pids(self._pid):
                self._record(child, "worker", now)

    # -- lifecycle ------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - a dead sampler beats a dead sweep
                return

    def start(self) -> "ResourceSampler":
        """Begin sampling on a daemon thread (idempotent)."""
        if self._thread is None:
            self.sample_once()  # immediate baseline point
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-resource-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
            self._thread = None
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001
                pass

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Prometheus HTTP endpoint
# ----------------------------------------------------------------------


class MetricsServer:
    """Serve a registry over HTTP in the Prometheus text format.

    ``GET /metrics`` (or ``/``) renders
    :func:`~repro.telemetry.exporters.registry_to_prometheus` of the
    live registry — the sweep keeps mutating it, every scrape sees the
    current state. ``port=0`` binds an ephemeral port (tests);
    :attr:`port` reports the bound one either way.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.registry = registry

        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                    self.send_error(404)
                    return
                body = registry_to_prometheus(server.registry).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-scrape noise
                return

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=2.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Live progress (repro top)
# ----------------------------------------------------------------------

PROGRESS_FILENAME = "progress.json"


class ProgressBoard:
    """Sweep-side writer of the live progress file ``repro top`` reads.

    The engine calls :meth:`update` from its drain loop; the board
    coalesces writes (at most one per ``min_interval_s``, plus a forced
    final write) and replaces ``<dir>/progress.json`` atomically, so a
    concurrent reader never sees a torn file. Derived rates (sessions/s,
    ETA) are computed at write time from the accumulated counts.
    """

    def __init__(
        self, directory: Union[str, Path], min_interval_s: float = 0.25
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / PROGRESS_FILENAME
        self.min_interval_s = min_interval_s
        self._started = time.time()
        self._last_write = 0.0
        self._state: Dict[str, object] = {"phase": "starting"}

    def update(self, force: bool = False, **fields) -> None:
        """Merge ``fields`` into the board state; maybe write the file."""
        self._state.update(fields)
        now = time.time()
        if not force and now - self._last_write < self.min_interval_s:
            return
        self._last_write = now
        payload = dict(self._state)
        elapsed = max(now - self._started, 1e-9)
        payload["started_at"] = self._started
        payload["updated_at"] = now
        payload["elapsed_s"] = round(elapsed, 3)
        completed = float(payload.get("completed_sessions", 0) or 0)
        cached = float(payload.get("cached_sessions", 0) or 0)
        total = float(payload.get("total_sessions", 0) or 0)
        rate = completed / elapsed
        payload["sessions_per_s"] = round(rate, 2)
        remaining = max(total - completed - cached, 0.0)
        payload["eta_s"] = round(remaining / rate, 1) if rate > 0 else None
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, self.path)

    def close(self, **fields) -> None:
        """Final forced write (phase defaults to ``done``)."""
        fields.setdefault("phase", "done")
        self.update(force=True, **fields)


def load_progress(directory: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Read the progress file under ``directory``; None when absent/torn."""
    path = Path(directory) / PROGRESS_FILENAME
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = max(float(seconds), 0.0)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render_top(progress: Mapping[str, object], width: int = 72) -> str:
    """One refresh frame of the ``repro top`` dashboard (plain text)."""
    lines: List[str] = []
    phase = progress.get("phase", "?")
    workers = progress.get("workers", "?")
    lines.append(
        f"repro sweep — phase {phase} — workers {workers} — "
        f"elapsed {_fmt_duration(progress.get('elapsed_s'))}"
    )
    total_units = int(progress.get("total_units", 0) or 0)
    done_units = int(progress.get("done_units", 0) or 0)
    failed_units = int(progress.get("failed_units", 0) or 0)
    completed = int(progress.get("completed_sessions", 0) or 0)
    cached = int(progress.get("cached_sessions", 0) or 0)
    total = int(progress.get("total_sessions", 0) or 0)
    lines.append(
        f"units {done_units}/{total_units} done ({failed_units} failed)   "
        f"sessions {completed + cached}/{total} "
        f"({cached} cached)   "
        f"{progress.get('sessions_per_s', 0)} sessions/s   "
        f"ETA {_fmt_duration(progress.get('eta_s'))}"
    )
    if total > 0:
        frac = min((completed + cached) / total, 1.0)
        filled = int(frac * (width - 10))
        lines.append(
            "[" + "#" * filled + "-" * (width - 10 - filled) + f"] {frac * 100:5.1f}%"
        )
    schemes = progress.get("schemes") or {}
    if schemes:
        lines.append("")
        lines.append(f"{'scheme':24s} {'sessions':>9s} {'unit s':>8s}  stage breakdown")
        for label in sorted(schemes):
            info = schemes[label] or {}
            stages = info.get("stages") or {}
            stage_text = "  ".join(
                f"{name.split('.', 1)[-1]}={stages[name].get('wall_s', 0.0):.2f}s"
                for name in sorted(stages)
            )
            lines.append(
                f"{label[:24]:24s} {int(info.get('sessions', 0)):>9d} "
                f"{float(info.get('unit_seconds', 0.0)):>8.2f}  {stage_text}"
            )
    return "\n".join(lines) + "\n"
