"""Hierarchical span tracing for the sweep pipeline.

A *span* is one timed region of pipeline work — a scheduler phase, a
worker's execution of one unit, a batch-engine stage — with wall and CPU
time, a parent link (spans nest through a context-manager API), and a
small metadata dict. Each process records into its own
:class:`SpanTracer`; workers ship their span lists back to the parent
alongside unit results (they are plain dicts, so they pickle for free),
and the scheduler stitches every process's spans into one run timeline
with :meth:`SpanTracer.absorb`.

Design constraints, mirroring the rest of the telemetry layer:

- **Zero overhead off.** The tracer is opt-in: every instrumented call
  site takes ``tracer=None`` by default and guards with a single
  ``is not None`` check (the same contract as the session-level
  ``tracer=None`` path). The hot lockstep loop uses the even cheaper
  :class:`StageTimer` protocol — one boolean test per stage when
  disabled, no context manager allocation.
- **Cross-process timestamps.** ``time.perf_counter()`` is monotonic but
  its epoch is arbitrary per platform, so every tracer anchors itself
  once with ``time.time()`` and records span starts as *wall-clock epoch
  seconds* derived from perf-counter offsets. Same-host processes (the
  only deployment the pool supports) therefore produce directly
  comparable timestamps, with perf-counter resolution within a process.
- **Picklable snapshots.** A snapshot is a list of plain dicts — the
  span schema below — that crosses the pool boundary untouched. Parent
  links are list indices *within one snapshot*; :meth:`absorb` re-bases
  them when stitching snapshots together.

Span schema (one dict per span)::

    {
        "name":   "unit.run",         # what was timed
        "cat":    "unit",             # coarse grouping for exporters
        "start_s": 1733.25,           # wall-clock epoch seconds
        "dur_s":  0.0123,             # wall duration
        "cpu_s":  0.0119,             # process CPU during the span
        "parent": 0,                  # index of enclosing span, -1 = root
        "pid":    12345,              # recording process
        "track":  "worker-12345",     # display lane (stitching label)
        "meta":   {"scheme": "CAVA"}  # small scalars only
    }
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = [
    "SpanTracer",
    "StageTimer",
    "maybe_span",
]


class _NullSpan:
    """Shared no-op context manager for disabled call sites."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def annotate(self, **meta) -> None:
        return None


_NULL_SPAN = _NullSpan()


def maybe_span(tracer: Optional["SpanTracer"], name: str, cat: str = "", **meta):
    """``tracer.span(...)`` when a tracer is attached, else a no-op.

    The one-line idiom instrumented call sites use so the disabled path
    stays a single ``is None`` test plus a shared singleton — no
    allocation, no conditional nesting at the call site.
    """
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, **meta)


class _SpanHandle:
    """Context manager for one open span (created by :meth:`SpanTracer.span`)."""

    __slots__ = ("_tracer", "_index", "_perf0", "_cpu0")

    def __init__(self, tracer: "SpanTracer", index: int, perf0: float, cpu0: float):
        self._tracer = tracer
        self._index = index
        self._perf0 = perf0
        self._cpu0 = cpu0

    def __enter__(self) -> "_SpanHandle":
        return self

    def annotate(self, **meta) -> None:
        """Attach metadata to the open span (small scalars only)."""
        self._tracer.spans[self._index]["meta"].update(meta)

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._tracer.spans[self._index]
        span["dur_s"] = time.perf_counter() - self._perf0
        span["cpu_s"] = time.process_time() - self._cpu0
        if exc_type is not None:
            # A span that ends in an exception still records fully —
            # failed units keep their timing (the FailedUnit contract).
            span["meta"]["error"] = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] == self._index:
            stack.pop()


class SpanTracer:
    """Per-process recorder of nested spans.

    One tracer per process (the scheduler's, plus one per worker unit);
    spans nest through the context-manager API::

        with tracer.span("unit.run", cat="unit", scheme="CAVA"):
            with tracer.span("unit.batch", cat="unit"):
                ...

    Not thread-safe by design: every recording site in the pipeline is
    single-threaded (pool workers, the scheduler's drain loop). Sampler
    threads write to the metrics registry, never to a tracer.
    """

    __slots__ = ("spans", "label", "pid", "_stack", "_wall0", "_perf0")

    def __init__(self, label: str = "") -> None:
        self.pid = os.getpid()
        self.label = label or f"pid-{self.pid}"
        self.spans: List[Dict[str, object]] = []
        self._stack: List[int] = []
        self._wall0 = time.time()
        self._perf0 = time.perf_counter()

    # -- recording ------------------------------------------------------

    def _now_wall(self, perf_now: float) -> float:
        return self._wall0 + (perf_now - self._perf0)

    def span(self, name: str, cat: str = "", **meta) -> _SpanHandle:
        """Open one span; close it by exiting the returned context."""
        perf_now = time.perf_counter()
        index = len(self.spans)
        self.spans.append(
            {
                "name": name,
                "cat": cat,
                "start_s": self._now_wall(perf_now),
                "dur_s": 0.0,
                "cpu_s": 0.0,
                "parent": self._stack[-1] if self._stack else -1,
                "pid": self.pid,
                "track": self.label,
                "meta": dict(meta),
            }
        )
        self._stack.append(index)
        return _SpanHandle(self, index, perf_now, time.process_time())

    def record(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        cat: str = "",
        cpu_s: float = 0.0,
        **meta,
    ) -> None:
        """Append one already-measured span (e.g. a pool-initializer
        timing captured before any tracer existed). Parents to the
        currently open span."""
        self.spans.append(
            {
                "name": name,
                "cat": cat,
                "start_s": start_s,
                "dur_s": dur_s,
                "cpu_s": cpu_s,
                "parent": self._stack[-1] if self._stack else -1,
                "pid": self.pid,
                "track": self.label,
                "meta": dict(meta),
            }
        )

    def record_stages(self, timer: "StageTimer", cat: str = "stage", **meta) -> None:
        """Emit one aggregate span per :class:`StageTimer` stage.

        Stage spans are *aggregates*: the lockstep loop enters each stage
        hundreds of times per unit, so per-entry spans would drown the
        trace. Each emitted span carries the stage's total wall/CPU time
        and entry count, laid out sequentially from the timer's creation
        time (``"aggregate": True`` marks the synthetic placement). They
        parent to the currently open span, so in the Chrome trace they
        nest under the unit that ran them.
        """
        start = timer.wall0
        for stage, (wall_s, cpu_s, count) in timer.totals.items():
            self.record(
                stage,
                start_s=start,
                dur_s=wall_s,
                cpu_s=cpu_s,
                cat=cat,
                count=count,
                aggregate=True,
                **meta,
            )
            start += wall_s

    # -- stitching ------------------------------------------------------

    def snapshot(self) -> List[Dict[str, object]]:
        """Picklable copy of every recorded span (meta copied too)."""
        return [dict(span, meta=dict(span["meta"])) for span in self.spans]

    def absorb(
        self,
        spans: Iterable[Mapping[str, object]],
        track: Optional[str] = None,
        **meta,
    ) -> None:
        """Stitch a foreign snapshot (e.g. a worker's) into this tracer.

        Parent indices are re-based onto this tracer's span list; foreign
        root spans stay roots (their ``track`` keeps them on their own
        display lane). ``track`` overrides the recorded lane label;
        ``meta`` is merged into every absorbed span (the scheduler uses
        this to tag worker spans with their unit order and attempt).
        """
        offset = len(self.spans)
        for span in spans:
            copied = dict(span, meta=dict(span["meta"]))
            if copied.get("parent", -1) >= 0:
                copied["parent"] = copied["parent"] + offset
            if track is not None:
                copied["track"] = track
            if meta:
                copied["meta"].update(meta)
            self.spans.append(copied)


class StageTimer:
    """Accumulating per-stage wall/CPU totals for tight loops.

    The lockstep batch engine's inner loop runs its stages (estimate,
    decide, advance) once per chunk across every lane; wrapping each in
    a context manager would allocate per step. Call sites instead hold a
    local ``timed = stage_timer is not None`` and bracket stages with
    explicit :meth:`add` calls — the disabled path is one branch per
    stage per step.
    """

    __slots__ = ("totals", "wall0")

    def __init__(self) -> None:
        #: stage name -> [total wall seconds, total cpu seconds, entries]
        self.totals: Dict[str, List[float]] = {}
        self.wall0 = time.time()

    def add(self, stage: str, wall_s: float, cpu_s: float = 0.0) -> None:
        """Fold one stage entry into the totals."""
        entry = self.totals.get(stage)
        if entry is None:
            self.totals[stage] = [wall_s, cpu_s, 1]
        else:
            entry[0] += wall_s
            entry[1] += cpu_s
            entry[2] += 1

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly stage summary (for bench records and progress)."""
        return {
            stage: {"wall_s": wall, "cpu_s": cpu, "count": int(count)}
            for stage, (wall, cpu, count) in self.totals.items()
        }
