"""One-session profiling: run with tracing on, render the merged timeline.

This is the ``repro trace`` backend: :func:`trace_session` replays one
(algorithm, video, trace) session with a
:class:`~repro.telemetry.tracer.SessionTracer` attached, and
:func:`render_controller_timeline` merges the resulting controller
trace with the player event log into the chunk-by-chunk view the
paper's §6.2–§6.4 analysis reads: where the outer controller put the
target buffer, what the PID error/output were, what bandwidth the loop
assumed versus what the link delivered, and which complexity class the
chunk fell in.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.network.estimator import BandwidthEstimator
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.events import session_events
from repro.player.session import SessionConfig, SessionResult, StreamingSession
from repro.telemetry.tracer import SessionTrace, SessionTracer
from repro.video.model import VideoAsset

__all__ = ["trace_session", "render_controller_timeline"]

#: Event kinds interleaved between chunk rows (downloads are the rows).
_EVENT_KINDS = ("startup", "stall", "idle", "idle_requested", "idle_cap")


def trace_session(
    algorithm,
    video: VideoAsset,
    trace_or_link: Union[NetworkTrace, TraceLink],
    config: SessionConfig = SessionConfig(),
    estimator: Optional[BandwidthEstimator] = None,
    include_quality: bool = False,
) -> Tuple[SessionResult, SessionTrace]:
    """Run one session with tracing enabled; return (result, trace)."""
    link = (
        trace_or_link
        if isinstance(trace_or_link, TraceLink)
        else TraceLink(trace_or_link)
    )
    manifest = video.manifest(include_quality=include_quality)
    tracer = SessionTracer()
    result = StreamingSession(config).run(
        algorithm, manifest, link, estimator, tracer=tracer
    )
    return result, tracer.trace


_HEADER = (
    f"{'time':>11} {'chk':>4}  {'Q':>2}  {'lv':>2}  {'buf':>6}  {'target':>8}"
    f"  {'err':>8}  {'u':>7}  {'alpha':>6}  {'est Mbps':>9}  {'real Mbps':>9}"
)


def _chunk_row(record) -> str:
    """One chunk's merged controller/player line."""
    step = record.controller
    if step is not None:
        quartile = f"Q{step.quartile}"
        target = f"{step.target_buffer_s:7.1f}s"
        error = f"{step.error_s:+8.2f}"
        u = f"{step.u:7.3f}"
        alpha = f"{step.alpha:6.2f}"
    else:
        quartile, target, error, u, alpha = " -", f"{'-':>8}", f"{'-':>8}", f"{'-':>7}", f"{'-':>6}"
    return (
        f"[{record.download_start_s:8.2f}s] {record.chunk_index:4d}  {quartile}"
        f"  L{record.level}  {record.buffer_before_s:5.1f}s  {target}  {error}"
        f"  {u}  {alpha}  {record.estimated_bandwidth_bps / 1e6:9.2f}"
        f"  {record.realized_bandwidth_bps / 1e6:9.2f}"
    )


def render_controller_timeline(
    trace: SessionTrace, result: SessionResult, limit: Optional[int] = None
) -> str:
    """Merge the controller trace and the event log into one timeline.

    Chunk rows show the controller columns (dashes for schemes without a
    CAVA-style controller); startup/stall/idle events from the player
    log are interleaved at their timestamps. ``limit`` truncates to the
    first N lines after the header (None = everything).
    """
    entries: List[Tuple[float, int, str]] = []
    for record in trace.records:
        entries.append((record.download_start_s, record.chunk_index, _chunk_row(record)))
    for event in session_events(result):
        if event.kind not in _EVENT_KINDS:
            continue
        entries.append(
            (
                event.time_s,
                event.chunk_index,
                f"[{event.time_s:8.2f}s] {event.kind}: {event.detail}",
            )
        )
    entries.sort(key=lambda entry: (entry[0], entry[1]))

    lines = [
        f"{trace.scheme} on {trace.video_name} over {trace.trace_name} — "
        f"per-chunk controller timeline",
        _HEADER,
    ]
    rows = [line for _, _, line in entries]
    if limit is not None and len(rows) > limit:
        truncated = len(rows) - limit
        rows = rows[:limit] + [f"... {truncated} more rows"]
    lines.extend(rows)
    return "\n".join(lines)
