"""Controller tracing: typed per-chunk records of *why* a session behaved
as it did.

:class:`~repro.player.session.SessionResult` records the client-observable
outputs of a session; debugging the inner/outer coupling of CAVA
(Eqs. 1–5) needs the *inputs*: the dynamic target buffer the outer
controller chose (Eq. 5), the PID error and integral driving ``u_t``
(Eq. 2), the W-chunk lookahead average and differential factor the inner
controller minimized over (Eqs. 3–4), and the bandwidth estimate the
whole loop trusted versus the throughput the link actually delivered.

The :class:`Tracer` protocol carries those quantities out of the hot
loop without perturbing it:

- every hook on the base class is a no-op, so :class:`NullTracer` (or
  simply passing ``tracer=None``, which skips the calls entirely) leaves
  ``StreamingSession.run`` bit-identical;
- :class:`SessionTracer` collects one :class:`ChunkRecord` per chunk
  into a :class:`SessionTrace`, merging the player-side record emitted
  by the session with the :class:`ControllerStep` emitted by
  :class:`~repro.core.cava.CavaAlgorithm` (absent for schemes without a
  CAVA-style controller);
- bandwidth estimators wrapped in
  :class:`~repro.network.estimator.TracedEstimator` additionally stream
  every prediction/observation as :class:`BandwidthEvent` entries.

Nothing here imports the player or the controllers — records are plain
data — so every layer can depend on this module without cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "ControllerStep",
    "ChunkRecord",
    "BandwidthEvent",
    "SessionTrace",
    "Tracer",
    "NullTracer",
    "SessionTracer",
]


@dataclass(frozen=True)
class ControllerStep:
    """CAVA's internal state when it decided one chunk (Eqs. 1–5).

    Attributes
    ----------
    target_buffer_s:
        The outer controller's dynamic target ``x_r(t)`` (Eq. 5).
    error_s:
        The PID error ``x_r(t) - x_t`` fed to Eq. 2.
    integral:
        The (anti-windup-clamped) integral term of Eq. 2, in s².
    u:
        The saturated controller output ``u_t`` — the relative filling
        rate the inner controller budgets against (Eq. 1).
    alpha:
        The differential bandwidth factor applied to this chunk (P2):
        > 1 inflates for Q4, < 1 deflates for Q1–Q3, 1.0 when
        differential treatment is disabled or a heuristic reset it.
    lookahead_mbps:
        The short-term-filtered bitrate ``R̄_t(l*)`` of the *selected*
        track — the W-chunk lookahead average of Eq. 3, in Mbps.
    quartile:
        Complexity class of the chunk (1..num_classes; 4 = Q4).
    """

    target_buffer_s: float
    error_s: float
    integral: float
    u: float
    alpha: float
    lookahead_mbps: float
    quartile: int


@dataclass
class ChunkRecord:
    """Everything known about one chunk's journey through the session.

    Player-side fields are filled by ``StreamingSession.run``;
    ``controller`` is attached when the algorithm emitted a
    :class:`ControllerStep` for the same chunk (CAVA variants do,
    baselines do not).
    """

    chunk_index: int
    level: int
    size_bits: float
    buffer_before_s: float
    buffer_after_s: float
    requested_idle_s: float
    cap_idle_s: float
    stall_s: float
    download_start_s: float
    download_finish_s: float
    estimated_bandwidth_bps: float
    realized_bandwidth_bps: float
    controller: Optional[ControllerStep] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dict (controller fields nested, or null)."""
        return asdict(self)


@dataclass(frozen=True)
class BandwidthEvent:
    """One estimator interaction: a prediction or an observed sample."""

    kind: str  # "estimate" | "sample"
    now_s: float
    bandwidth_bps: float


@dataclass
class SessionTrace:
    """The full controller timeline of one session, chunk by chunk."""

    scheme: str
    video_name: str
    trace_name: str
    records: List[ChunkRecord] = field(default_factory=list)
    bandwidth_events: List[BandwidthEvent] = field(default_factory=list)
    startup_delay_s: float = 0.0

    @property
    def num_chunks(self) -> int:
        """Number of chunk records captured."""
        return len(self.records)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dict of the whole trace."""
        return {
            "scheme": self.scheme,
            "video_name": self.video_name,
            "trace_name": self.trace_name,
            "startup_delay_s": self.startup_delay_s,
            "records": [record.to_dict() for record in self.records],
            "bandwidth_events": [asdict(event) for event in self.bandwidth_events],
        }


class Tracer:
    """Tracing protocol threaded through the session and controllers.

    Every hook is a no-op here, so subclasses override only what they
    need and the base class doubles as a null sink. The session treats
    ``tracer=None`` as "tracing disabled" and skips the calls entirely,
    which is the zero-overhead path the benchmarks guard.
    """

    def on_session_start(
        self, scheme: str, video_name: str, trace_name: str, num_chunks: int
    ) -> None:
        """The session is about to stream ``num_chunks`` chunks."""

    def on_controller_step(self, chunk_index: int, step: ControllerStep) -> None:
        """A CAVA-style controller decided chunk ``chunk_index``."""

    def on_chunk(self, record: ChunkRecord) -> None:
        """One chunk finished downloading; the player-side record."""

    def on_bandwidth_estimate(self, now_s: float, bandwidth_bps: float) -> None:
        """A wrapped estimator produced a prediction."""

    def on_bandwidth_sample(self, now_s: float, bandwidth_bps: float) -> None:
        """A wrapped estimator absorbed an observed throughput sample."""

    def on_session_end(self, startup_delay_s: float) -> None:
        """The session finished; playback started at ``startup_delay_s``."""


class NullTracer(Tracer):
    """Explicit no-op tracer (identical to the base class by design)."""


class SessionTracer(Tracer):
    """Collects a :class:`SessionTrace`, one :class:`ChunkRecord` per chunk.

    Controller steps arrive *before* the chunk's player record (the
    decision precedes the download), so they are held pending by chunk
    index and attached when the record lands.
    """

    def __init__(self) -> None:
        self.trace = SessionTrace(scheme="", video_name="", trace_name="")
        self._pending_steps: Dict[int, ControllerStep] = {}

    def on_session_start(
        self, scheme: str, video_name: str, trace_name: str, num_chunks: int
    ) -> None:
        self.trace = SessionTrace(
            scheme=scheme, video_name=video_name, trace_name=trace_name
        )
        self._pending_steps.clear()

    def on_controller_step(self, chunk_index: int, step: ControllerStep) -> None:
        self._pending_steps[chunk_index] = step

    def on_chunk(self, record: ChunkRecord) -> None:
        record.controller = self._pending_steps.pop(record.chunk_index, None)
        self.trace.records.append(record)

    def on_bandwidth_estimate(self, now_s: float, bandwidth_bps: float) -> None:
        self.trace.bandwidth_events.append(
            BandwidthEvent(kind="estimate", now_s=now_s, bandwidth_bps=bandwidth_bps)
        )

    def on_bandwidth_sample(self, now_s: float, bandwidth_bps: float) -> None:
        self.trace.bandwidth_events.append(
            BandwidthEvent(kind="sample", now_s=now_s, bandwidth_bps=bandwidth_bps)
        )

    def on_session_end(self, startup_delay_s: float) -> None:
        self.trace.startup_delay_s = startup_delay_s
