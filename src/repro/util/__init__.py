"""Shared utilities: seeded randomness, statistics, units, validation.

These helpers keep the rest of the library deterministic (every stochastic
component takes an explicit seed or :class:`numpy.random.Generator`) and
free of ad-hoc unit math (all conversions between bits, bytes, megabits and
seconds go through :mod:`repro.util.units`).
"""

from repro.util.rng import RngStream, derive_rng, spawn_rngs
from repro.util.stats import (
    cdf_points,
    coefficient_of_variation,
    harmonic_mean,
    pearson_correlation,
    quantile,
    quartile_thresholds,
    running_mean,
    spearman_correlation,
)
from repro.util.units import (
    BITS_PER_BYTE,
    bits_to_megabits,
    bytes_to_bits,
    bytes_to_megabits,
    megabits_to_bits,
    megabits_to_bytes,
    mbps_to_bps,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RngStream",
    "derive_rng",
    "spawn_rngs",
    "cdf_points",
    "coefficient_of_variation",
    "harmonic_mean",
    "pearson_correlation",
    "quantile",
    "quartile_thresholds",
    "running_mean",
    "spearman_correlation",
    "BITS_PER_BYTE",
    "bits_to_megabits",
    "bytes_to_bits",
    "bytes_to_megabits",
    "megabits_to_bits",
    "megabits_to_bytes",
    "mbps_to_bps",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
