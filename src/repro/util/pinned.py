"""Identity-keyed memoization with pinned source references.

Several hot-path components precompute tables that are pure functions of
a source object (typically a :class:`~repro.video.model.Manifest`) plus
a small hashable key: MPC's per-horizon score tables, CAVA's prepared
controller stack. Sweeps construct a *fresh algorithm per session* but
memoize the manifest (see :class:`~repro.experiments.artifacts.
ArtifactCache`), so these tables must be cached per *source object*, at
module level, to be reused across sessions.

Keying by ``id(source)`` alone is unsound — ids are reused after garbage
collection — so every entry pins a strong reference to its source and
reuse requires an ``is`` match, the same discipline ``ArtifactCache``
uses. Capacity is bounded: when full, the memo is dropped wholesale
(entries are cheap to rebuild; eviction bookkeeping is not worth it).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Tuple

__all__ = ["PinnedMemo"]


class PinnedMemo:
    """Per-source-object memo: ``(source, key) -> build()``, pinned."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._store: Dict[int, Tuple[Any, Dict[Hashable, Any]]] = {}

    def get(self, source: Any, key: Hashable, build: Callable[[], Any]) -> Any:
        """Value of ``build()`` memoized under ``(source identity, key)``."""
        entry = self._store.get(id(source))
        if entry is None or entry[0] is not source:
            if len(self._store) >= self._capacity:
                self._store.clear()
            entry = (source, {})
            self._store[id(source)] = entry
        values = entry[1]
        value = values.get(key)
        if value is None:
            value = build()
            values[key] = value
        return value

    def clear(self) -> None:
        """Drop every entry (and its pinned source)."""
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)
