"""Deterministic random-number management.

Every stochastic component in the library (scene synthesis, trace
generation, bandwidth-estimation error injection) draws from a
:class:`numpy.random.Generator` derived from an explicit integer seed, so a
whole experiment — hundreds of videos times hundreds of traces — replays
bit-identically from a single root seed.

The derivation scheme hashes ``(seed, *labels)`` through
:class:`numpy.random.SeedSequence`, which guarantees that streams derived
with different labels are statistically independent, and that adding a new
consumer never perturbs existing streams.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence

import numpy as np

__all__ = ["RngStream", "derive_rng", "spawn_rngs"]


def _label_entropy(labels: Sequence[str]) -> List[int]:
    """Map string labels to stable 32-bit integers for seed derivation.

    ``zlib.crc32`` is used rather than ``hash()`` because the latter is
    salted per process and would break replayability.
    """
    return [zlib.crc32(label.encode("utf-8")) for label in labels]


def derive_rng(seed: int, *labels: str) -> np.random.Generator:
    """Return a generator deterministically derived from ``seed`` and labels.

    Parameters
    ----------
    seed:
        Root experiment seed. Must be a non-negative integer.
    labels:
        Arbitrary strings naming the consumer, e.g. ``("trace", "lte", "17")``.
        Different label tuples yield independent streams.
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    seq = np.random.SeedSequence([seed] + _label_entropy(labels))
    return np.random.default_rng(seq)


def spawn_rngs(seed: int, count: int, *labels: str) -> List[np.random.Generator]:
    """Return ``count`` independent generators under a common label prefix."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_rng(seed, *labels, str(index)) for index in range(count)]


class RngStream:
    """A named, replayable stream of random generators.

    A stream hands out child generators on demand; each child is identified
    by the order in which it was requested, so replaying the same sequence
    of calls reproduces the same randomness.

    Examples
    --------
    >>> stream = RngStream(seed=7, name="traces")
    >>> g0 = stream.child("lte")
    >>> g1 = stream.child("fcc")
    >>> float(g0.random()) != float(g1.random())
    True
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self.name = name
        self._counters: dict = {}

    def child(self, label: str) -> np.random.Generator:
        """Return the next generator for ``label``.

        Repeated calls with the same label return *different* generators
        (call index is folded into the derivation) so loops can simply call
        ``stream.child("trace")`` per iteration.
        """
        index = self._counters.get(label, 0)
        self._counters[label] = index + 1
        return derive_rng(self.seed, self.name, label, str(index))

    def fixed(self, label: str) -> np.random.Generator:
        """Return a generator that does not depend on call order."""
        return derive_rng(self.seed, self.name, label, "fixed")

    def fork(self, name: str) -> "RngStream":
        """Return a sub-stream with an independent namespace."""
        return RngStream(seed=derive_rng(self.seed, self.name, name).integers(2**31).item(), name=name)

    def integers(self, label: str, low: int, high: int, size: int) -> np.ndarray:
        """Convenience: draw ``size`` integers in ``[low, high)`` for ``label``."""
        return self.child(label).integers(low, high, size=size)

    def __repr__(self) -> str:
        return f"RngStream(seed={self.seed}, name={self.name!r})"
