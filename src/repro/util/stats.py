"""Statistics helpers shared by characterization, control, and reporting.

The paper leans on a handful of simple statistics throughout: quartile
thresholds for chunk classification (§3.1.1), Pearson correlation to show
quartile-category consistency across tracks, harmonic means for bandwidth
estimation (§5.5), coefficient of variation to describe per-track bitrate
variability (§2), and empirical CDFs for virtually every evaluation figure.
They live here so every module computes them the same way.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "cdf_points",
    "coefficient_of_variation",
    "harmonic_mean",
    "pearson_correlation",
    "quantile",
    "quartile_thresholds",
    "running_mean",
    "spearman_correlation",
]


def _as_array(values: Sequence[float], name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite values")
    return array


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of strictly positive values.

    This is the estimator the paper (and MPC/RobustMPC before it) uses for
    throughput prediction: the harmonic mean of the last five per-chunk
    throughput samples, robust to single large outliers.
    """
    array = _as_array(values, "values")
    if np.any(array <= 0):
        raise ValueError("harmonic_mean requires strictly positive values")
    return float(array.size / np.sum(1.0 / array))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (``q`` in [0, 1])."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    return float(np.quantile(_as_array(values, "values"), q))


def quartile_thresholds(values: Sequence[float]) -> Tuple[float, float, float]:
    """Return the (25th, 50th, 75th) percentile cut points of ``values``.

    These are the boundaries used to label chunks Q1..Q4 by size (§3.1.1).
    """
    array = _as_array(values, "values")
    q25, q50, q75 = np.quantile(array, [0.25, 0.50, 0.75])
    return float(q25), float(q50), float(q75)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation divided by mean (mean must be non-zero)."""
    array = _as_array(values, "values")
    mean = float(np.mean(array))
    if mean == 0.0:
        raise ValueError("coefficient_of_variation undefined for zero mean")
    return float(np.std(array) / abs(mean))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson product-moment correlation of two equal-length sequences."""
    x = _as_array(xs, "xs")
    y = _as_array(ys, "ys")
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("correlation requires at least two points")
    sx = float(np.std(x))
    sy = float(np.std(y))
    if sx == 0.0 or sy == 0.0:
        raise ValueError("correlation undefined for constant input")
    return float(np.mean((x - np.mean(x)) * (y - np.mean(y))) / (sx * sy))


def spearman_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    x = _as_array(xs, "xs")
    y = _as_array(ys, "ys")
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")

    def _ranks(a: np.ndarray) -> np.ndarray:
        order = np.argsort(a, kind="mergesort")
        ranks = np.empty(a.size, dtype=float)
        ranks[order] = np.arange(1, a.size + 1, dtype=float)
        # Average ranks over ties so the statistic is well-defined.
        for value in np.unique(a):
            mask = a == value
            if np.count_nonzero(mask) > 1:
                ranks[mask] = ranks[mask].mean()
        return ranks

    return pearson_correlation(_ranks(x), _ranks(y))


def cdf_points(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_fractions)`` for an empirical CDF.

    The fractions are ``i / n`` for the i-th sorted sample (``i`` from 1),
    matching the step-function CDFs plotted throughout the paper.
    """
    array = np.sort(_as_array(values, "values"))
    fractions = np.arange(1, array.size + 1, dtype=float) / array.size
    return array, fractions


def running_mean(values: Sequence[float], window: int) -> np.ndarray:
    """Forward-looking running mean with a shrinking tail window.

    ``result[i]`` is the mean of ``values[i : i + window]``; near the end of
    the sequence fewer than ``window`` samples remain and the mean is taken
    over what is left. This is exactly the "short-term statistical filter"
    semantics CAVA's inner controller needs at the end of a video (§5.3).
    """
    array = _as_array(values, "values")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    cumulative = np.concatenate([[0.0], np.cumsum(array)])
    n = array.size
    result = np.empty(n, dtype=float)
    for i in range(n):
        j = min(n, i + window)
        result[i] = (cumulative[j] - cumulative[i]) / (j - i)
    return result
