"""Unit conversions between bits, bytes, megabits, and rates.

Conventions used across the library:

- chunk **sizes** are stored in **bits** (float), because every formula in
  the paper divides sizes by bitrates or bandwidths expressed in bits/s;
- **bitrates and bandwidths** are stored in **bits per second**;
- reporting helpers convert to megabits / megabytes only at the display
  boundary, mirroring the figures in the paper (Mbps axes, MB data usage).

1 megabit = 1e6 bits (decimal, the networking convention), and
1 byte = 8 bits.
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "BITS_PER_MEGABIT",
    "bits_to_megabits",
    "bytes_to_bits",
    "bytes_to_megabits",
    "megabits_to_bits",
    "megabits_to_bytes",
    "mbps_to_bps",
    "bps_to_mbps",
    "bits_to_megabytes",
]

BITS_PER_BYTE = 8
BITS_PER_MEGABIT = 1_000_000


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return float(num_bytes) * BITS_PER_BYTE


def bits_to_megabits(bits: float) -> float:
    """Convert bits to megabits (decimal)."""
    return float(bits) / BITS_PER_MEGABIT


def megabits_to_bits(megabits: float) -> float:
    """Convert megabits (decimal) to bits."""
    return float(megabits) * BITS_PER_MEGABIT


def bytes_to_megabits(num_bytes: float) -> float:
    """Convert bytes to megabits."""
    return bits_to_megabits(bytes_to_bits(num_bytes))


def megabits_to_bytes(megabits: float) -> float:
    """Convert megabits to bytes."""
    return megabits_to_bits(megabits) / BITS_PER_BYTE


def mbps_to_bps(mbps: float) -> float:
    """Convert megabits/second to bits/second."""
    return megabits_to_bits(mbps)


def bps_to_mbps(bps: float) -> float:
    """Convert bits/second to megabits/second."""
    return bits_to_megabits(bps)


def bits_to_megabytes(bits: float) -> float:
    """Convert bits to megabytes (decimal), the unit of the data-usage CDFs."""
    return float(bits) / (BITS_PER_BYTE * BITS_PER_MEGABIT)
