"""Input-validation helpers with uniform, informative error messages.

These raise ``ValueError`` with the offending name and value so a failure
deep inside a 200-trace sweep points directly at the bad parameter.
"""

from __future__ import annotations

import math

__all__ = [
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]


def check_finite(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is finite and > 0."""
    value = check_finite(value, name)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is finite and >= 0."""
    value = check_finite(value, name)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is in [0, 1]."""
    value = check_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    value = check_finite(value, name)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
