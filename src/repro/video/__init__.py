"""VBR video substrate: scene synthesis, encoder models, quality surfaces,
chunk classification, and the paper's 16-video dataset analogue (§2–§3)."""

from repro.video.classify import (
    ChunkClassifier,
    classify_sizes,
    classify_sizes_quantiles,
    cross_track_category_correlation,
    reference_level,
)
from repro.video.dataset import (
    FFMPEG_SPECS,
    YOUTUBE_SPECS,
    VideoSpec,
    build_cbr_counterpart,
    build_dataset,
    build_standard_dataset,
    build_video,
    fourx_spec,
    standard_dataset_specs,
)
from repro.video.model import QUALITY_METRICS, Manifest, Track, VideoAsset
from repro.video.quality import (
    DEFAULT_QUALITY_MODEL,
    RESOLUTION_PIXELS,
    QualityModel,
    complexity_bit_demand,
)
from repro.video.manifest_io import (
    manifest_from_hls,
    manifest_from_mpd,
    manifest_to_hls,
    manifest_to_mpd,
)
from repro.video.scene import (
    GENRE_PROFILES,
    GenreProfile,
    SceneTimeline,
    synthesize_scene_timeline,
)
from repro.video.storage import (
    load_dataset,
    load_video,
    save_dataset,
    save_video,
)
from repro.video.synthesis import (
    CODEC_EFFICIENCY,
    DEFAULT_LADDER,
    EncoderConfig,
    apply_bitrate_cap,
    encode_ladder,
    encode_track_cbr,
    encode_track_vbr,
)

__all__ = [
    "ChunkClassifier",
    "classify_sizes",
    "classify_sizes_quantiles",
    "cross_track_category_correlation",
    "reference_level",
    "FFMPEG_SPECS",
    "YOUTUBE_SPECS",
    "VideoSpec",
    "build_cbr_counterpart",
    "build_dataset",
    "build_standard_dataset",
    "build_video",
    "fourx_spec",
    "standard_dataset_specs",
    "manifest_from_hls",
    "manifest_from_mpd",
    "manifest_to_hls",
    "manifest_to_mpd",
    "load_dataset",
    "load_video",
    "save_dataset",
    "save_video",
    "QUALITY_METRICS",
    "Manifest",
    "Track",
    "VideoAsset",
    "DEFAULT_QUALITY_MODEL",
    "RESOLUTION_PIXELS",
    "QualityModel",
    "complexity_bit_demand",
    "GENRE_PROFILES",
    "GenreProfile",
    "SceneTimeline",
    "synthesize_scene_timeline",
    "CODEC_EFFICIENCY",
    "DEFAULT_LADDER",
    "EncoderConfig",
    "apply_bitrate_cap",
    "encode_ladder",
    "encode_track_cbr",
    "encode_track_vbr",
]
