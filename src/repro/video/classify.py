"""Chunk classification by relative size — the paper's complexity proxy.

§3.1.1 shows that (1) a chunk's size *relative to its track* tracks the
underlying scene complexity, and (2) the relative size is consistent
across tracks. The practical recipe the paper derives — and CAVA uses —
is: pick one **reference track** (a middle track), split its chunk sizes
at the quartiles, label each playback position Q1..Q4 accordingly, and
apply that label to every track.

Everything here operates on the client-visible manifest, because that is
all a deployable ABR algorithm has (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.util.stats import pearson_correlation, quartile_thresholds
from repro.video.model import Manifest, VideoAsset

__all__ = [
    "classify_sizes",
    "classify_sizes_quantiles",
    "reference_level",
    "ChunkClassifier",
    "cross_track_category_correlation",
]

#: Category labels, 1-based to match the paper's Q1..Q4 terminology.
Q1, Q2, Q3, Q4 = 1, 2, 3, 4


def classify_sizes(sizes: Sequence[float]) -> np.ndarray:
    """Label each chunk Q1..Q4 by which size quartile it falls into.

    Sizes at a quartile boundary go to the lower category, so the four
    categories are ``(-inf, q25], (q25, q50], (q50, q75], (q75, inf)``.
    """
    sizes = np.asarray(sizes, dtype=float)
    if sizes.ndim != 1 or sizes.size < 4:
        raise ValueError("need at least 4 chunk sizes to form quartiles")
    q25, q50, q75 = quartile_thresholds(sizes)
    categories = np.full(sizes.size, Q4, dtype=int)
    categories[sizes <= q75] = Q3
    categories[sizes <= q50] = Q2
    categories[sizes <= q25] = Q1
    return categories


def classify_sizes_quantiles(sizes: Sequence[float], num_classes: int) -> np.ndarray:
    """Generalized classification into ``num_classes`` equal-probability bins.

    §3.1.1 notes the quartile choice is not essential ("e.g., using five
    classes instead of four"); this provides that generalization. Returns
    1-based labels where ``num_classes`` marks the most complex chunks.
    """
    sizes = np.asarray(sizes, dtype=float)
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    if sizes.ndim != 1 or sizes.size < num_classes:
        raise ValueError(f"need at least {num_classes} chunk sizes")
    probs = np.linspace(0.0, 1.0, num_classes + 1)[1:-1]
    thresholds = np.quantile(sizes, probs)
    categories = np.full(sizes.size, num_classes, dtype=int)
    for label, threshold in zip(range(num_classes - 1, 0, -1), thresholds[::-1]):
        categories[sizes <= threshold] = label
    return categories


def reference_level(num_tracks: int) -> int:
    """The middle track the paper recommends as the classification reference."""
    if num_tracks < 1:
        raise ValueError("num_tracks must be >= 1")
    return num_tracks // 2


@dataclass
class ChunkClassifier:
    """Manifest-driven Q1..Q4 classifier with convenience queries.

    This is the component CAVA's differential-treatment logic (§5.3) and
    outer controller (§5.4) consume. Built once per manifest; all queries
    are O(1) array lookups.
    """

    categories: np.ndarray
    reference_track: int
    num_classes: int = 4

    @classmethod
    def from_manifest(
        cls,
        manifest: Manifest,
        reference_track: int = None,
        num_classes: int = 4,
    ) -> "ChunkClassifier":
        """Classify every playback position from the reference track's sizes."""
        if reference_track is None:
            reference_track = reference_level(manifest.num_tracks)
        if not 0 <= reference_track < manifest.num_tracks:
            raise IndexError(
                f"reference_track {reference_track} out of range [0, {manifest.num_tracks})"
            )
        sizes = manifest.chunk_sizes_bits[reference_track]
        if num_classes == 4:
            categories = classify_sizes(sizes)
        else:
            categories = classify_sizes_quantiles(sizes, num_classes)
        return cls(categories=categories, reference_track=reference_track, num_classes=num_classes)

    @classmethod
    def from_video(cls, video: VideoAsset, reference_track: int = None) -> "ChunkClassifier":
        """Convenience constructor from a full :class:`VideoAsset`."""
        return cls.from_manifest(video.manifest(), reference_track=reference_track)

    def category(self, index: int) -> int:
        """Q-category (1..num_classes) of the chunk at playback position ``index``."""
        return int(self.categories[index])

    def is_complex(self, index: int) -> bool:
        """True when the chunk belongs to the top (most complex) category."""
        return int(self.categories[index]) == self.num_classes

    def complex_positions(self) -> np.ndarray:
        """Indices of all top-category (Q4) chunks."""
        return np.flatnonzero(self.categories == self.num_classes)

    def category_fractions(self) -> Dict[int, float]:
        """Fraction of chunks in each category (≈ 1/num_classes each)."""
        n = self.categories.size
        return {
            label: float(np.count_nonzero(self.categories == label)) / n
            for label in range(1, self.num_classes + 1)
        }

    @property
    def num_chunks(self) -> int:
        """Number of classified playback positions."""
        return int(self.categories.size)


def cross_track_category_correlation(video: VideoAsset) -> np.ndarray:
    """Pairwise Pearson correlation of per-track category sequences.

    §3.1.1's Property (2) check: classify each track *independently* by its
    own quartiles, then correlate the category sequences between every pair
    of tracks. The paper reports values "close to 1"; our synthesis should
    reproduce that.

    Returns an ``(num_tracks, num_tracks)`` symmetric matrix.
    """
    per_track = [classify_sizes(track.chunk_sizes_bits) for track in video.tracks]
    n = len(per_track)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            value = pearson_correlation(per_track[i], per_track[j])
            matrix[i, j] = matrix[j, i] = value
    return matrix
