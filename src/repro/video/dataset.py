"""The 16-video dataset analogue (§2), plus the §3.3 / §6.6 variants.

The paper's dataset:

- **FFmpeg encodes (8)**: four Xiph raw titles — Elephant Dream (ED),
  Big Buck Bunny (BBB), Tears of Steel (ToS), Sintel — each encoded in
  H.264 and H.265 with the Netflix three-pass recipe, 2-second chunks,
  2x cap.
- **YouTube encodes (8)**: the same four titles uploaded/re-downloaded,
  plus four downloaded titles in the sports / animal / nature / action
  genres; H.264, ~5-second chunks, capped VBR with peak/avg 1.1–2.3.
- One extra **4x-capped** ED encode for §3.3 / §6.6.

We reproduce the dataset's *statistics* with the generative pipeline
(scene synthesis → capped two-pass VBR encoder → quality surfaces), seeded
so that every video is reproducible from ``(seed, spec)``. Each title gets
its own scene timeline; the H.264 and H.265 encodes of a title share that
timeline (same content, different codec), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.util.rng import derive_rng
from repro.util.validation import check_positive
from repro.video.model import VideoAsset
from repro.video.quality import DEFAULT_QUALITY_MODEL, QualityModel
from repro.video.scene import SceneTimeline, synthesize_scene_timeline
from repro.video.synthesis import DEFAULT_LADDER, EncoderConfig, encode_ladder

__all__ = [
    "VideoSpec",
    "FFMPEG_SPECS",
    "YOUTUBE_SPECS",
    "standard_dataset_specs",
    "build_video",
    "build_dataset",
    "build_standard_dataset",
    "fourx_spec",
    "build_cbr_counterpart",
]

#: Default total duration of every title; the paper's clips are ~10 minutes.
DEFAULT_DURATION_S = 600.0


@dataclass(frozen=True)
class VideoSpec:
    """Everything needed to deterministically rebuild one encoded video."""

    name: str
    title: str
    genre: str
    source: str  # "ffmpeg" or "youtube"
    codec: str  # "h264" or "h265"
    chunk_duration_s: float
    cap_ratio: float
    duration_s: float = DEFAULT_DURATION_S

    def __post_init__(self) -> None:
        if self.source not in ("ffmpeg", "youtube"):
            raise ValueError(f"source must be 'ffmpeg' or 'youtube', got {self.source!r}")
        check_positive(self.chunk_duration_s, "chunk_duration_s")
        check_positive(self.duration_s, "duration_s")


def _ffmpeg_spec(title: str, genre: str, codec: str) -> VideoSpec:
    return VideoSpec(
        name=f"{title}-ffmpeg-{codec}",
        title=title,
        genre=genre,
        source="ffmpeg",
        codec=codec,
        chunk_duration_s=2.0,
        cap_ratio=2.0,
    )


def _youtube_spec(title: str, genre: str) -> VideoSpec:
    return VideoSpec(
        name=f"{title}-youtube-h264",
        title=title,
        genre=genre,
        source="youtube",
        codec="h264",
        chunk_duration_s=5.0,
        cap_ratio=2.0,
    )


#: The four Xiph titles with their genres as categorized in §2.
_XIPH_TITLES: Tuple[Tuple[str, str], ...] = (
    ("ED", "animation"),
    ("BBB", "animation"),
    ("ToS", "scifi"),
    ("Sintel", "scifi"),
)

#: The four additional YouTube downloads of §2.
_YOUTUBE_ONLY_TITLES: Tuple[Tuple[str, str], ...] = (
    ("Sports", "sports"),
    ("Animal", "animal"),
    ("Nature", "nature"),
    ("Action", "action"),
)

FFMPEG_SPECS: Tuple[VideoSpec, ...] = tuple(
    _ffmpeg_spec(title, genre, codec)
    for title, genre in _XIPH_TITLES
    for codec in ("h264", "h265")
)

YOUTUBE_SPECS: Tuple[VideoSpec, ...] = tuple(
    _youtube_spec(title, genre) for title, genre in (_XIPH_TITLES + _YOUTUBE_ONLY_TITLES)
)


def standard_dataset_specs() -> List[VideoSpec]:
    """The 16 specs of the paper's dataset: 8 FFmpeg + 8 YouTube."""
    return list(FFMPEG_SPECS) + list(YOUTUBE_SPECS)


def fourx_spec() -> VideoSpec:
    """The 4x-capped Elephant Dream encode of §3.3 / §6.6."""
    return VideoSpec(
        name="ED-ffmpeg-h264-4x",
        title="ED",
        genre="animation",
        source="ffmpeg",
        codec="h264",
        chunk_duration_s=2.0,
        cap_ratio=4.0,
    )


def _timeline_for(spec: VideoSpec, seed: int) -> SceneTimeline:
    """Scene timeline shared by all encodes of the same title.

    Seeded by ``(seed, title, chunk_duration)``: the H.264 and H.265
    FFmpeg encodes of a title share identical content; the YouTube encode
    of the same title uses 5 s chunks, which re-discretizes the scenes.
    """
    rng = derive_rng(seed, "scene", spec.title, f"{spec.chunk_duration_s:g}")
    return synthesize_scene_timeline(
        rng, spec.genre, duration_s=spec.duration_s, chunk_duration_s=spec.chunk_duration_s
    )


def build_video(
    spec: VideoSpec,
    seed: int = 0,
    quality_model: QualityModel = DEFAULT_QUALITY_MODEL,
    encoding: str = "vbr",
    ladder: Sequence[int] = DEFAULT_LADDER,
) -> VideoAsset:
    """Deterministically build one encoded video from its spec.

    The encoder RNG is derived from ``(seed, spec.name, encoding)`` so the
    same call always returns bit-identical chunk sizes.
    """
    timeline = _timeline_for(spec, seed)
    config = EncoderConfig(codec=spec.codec, cap_ratio=spec.cap_ratio)
    encoder_rng = derive_rng(seed, "encode", spec.name, encoding)
    tracks = encode_ladder(
        encoder_rng, timeline, config, ladder=ladder, quality_model=quality_model, encoding=encoding
    )
    return VideoAsset(
        name=spec.name,
        genre=spec.genre,
        codec=spec.codec,
        source=spec.source,
        tracks=tracks,
        complexity=timeline.complexity,
        si=timeline.si,
        ti=timeline.ti,
        cap_ratio=spec.cap_ratio,
        encoding=encoding,
    )


def build_dataset(
    specs: Sequence[VideoSpec],
    seed: int = 0,
    quality_model: QualityModel = DEFAULT_QUALITY_MODEL,
) -> Dict[str, VideoAsset]:
    """Build several videos keyed by spec name."""
    videos: Dict[str, VideoAsset] = {}
    for spec in specs:
        if spec.name in videos:
            raise ValueError(f"duplicate spec name {spec.name!r}")
        videos[spec.name] = build_video(spec, seed=seed, quality_model=quality_model)
    return videos


def build_standard_dataset(
    seed: int = 0, quality_model: QualityModel = DEFAULT_QUALITY_MODEL
) -> Dict[str, VideoAsset]:
    """Build the full 16-video dataset analogue of §2."""
    return build_dataset(standard_dataset_specs(), seed=seed, quality_model=quality_model)


def build_cbr_counterpart(
    spec: VideoSpec, seed: int = 0, quality_model: QualityModel = DEFAULT_QUALITY_MODEL
) -> VideoAsset:
    """CBR encode of the same content at the same average bitrate.

    Used by the characterization examples to demonstrate the VBR-vs-CBR
    quality trade the paper's introduction describes.
    """
    return build_video(spec, seed=seed, quality_model=quality_model, encoding="cbr")
