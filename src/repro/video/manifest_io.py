"""Manifest serialization: DASH MPD (XML) and HLS playlists (m3u8).

The paper's whole premise for deployability (§3.2, footnote 1) is that
per-chunk size information reaches the client through the manifest:
DASH MPDs carry it (SegmentList / sidx), and HLS added it recently.
This module round-trips our :class:`~repro.video.model.Manifest`
through both formats so the synthetic dataset can be served to, or
loaded from, external tooling.

Conventions:

- **MPD**: one ``AdaptationSet`` with one ``Representation`` per track;
  segments are listed in a ``SegmentList`` whose ``SegmentURL`` elements
  carry the exact size in a ``repro:sizeBits`` attribute (real pipelines
  get sizes from the segment index; an explicit attribute keeps the file
  self-contained and byte-exact).
- **HLS**: a master playlist with ``AVERAGE-BANDWIDTH``/``BANDWIDTH``
  (peak) per variant — the two values BOLA-E (avg)/(peak) read — plus
  one media playlist per track whose segments are annotated with the
  draft ``#EXT-X-SIZE`` tag HLS introduced for byte sizes (§1, [46]).
"""

from __future__ import annotations

import hashlib
import re
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.video.model import Manifest, VideoAsset

__all__ = [
    "manifest_to_mpd",
    "manifest_from_mpd",
    "manifest_to_hls",
    "manifest_from_hls",
    "manifest_digest",
    "video_digest",
    "manifest_from_tables",
]

_MPD_NS = "urn:mpeg:dash:schema:mpd:2011"
_REPRO_NS = "urn:repro:vbr:2018"


def _iso_duration(seconds: float) -> str:
    """Seconds to an ISO-8601 duration (PT...S)."""
    return f"PT{seconds:g}S"


def _parse_iso_duration(text: str) -> float:
    match = re.fullmatch(r"PT([0-9.]+)S", text)
    if not match:
        raise ValueError(f"unsupported ISO duration: {text!r}")
    return float(match.group(1))


# ----------------------------------------------------------------------
# DASH MPD
# ----------------------------------------------------------------------
def manifest_to_mpd(manifest: Manifest) -> str:
    """Serialize a manifest as a DASH MPD document (static/VoD profile)."""
    ET.register_namespace("", _MPD_NS)
    ET.register_namespace("repro", _REPRO_NS)
    mpd = ET.Element(
        f"{{{_MPD_NS}}}MPD",
        {
            "type": "static",
            "mediaPresentationDuration": _iso_duration(
                manifest.num_chunks * manifest.chunk_duration_s
            ),
            "minBufferTime": _iso_duration(manifest.chunk_duration_s),
            f"{{{_REPRO_NS}}}videoName": manifest.video_name,
        },
    )
    period = ET.SubElement(mpd, f"{{{_MPD_NS}}}Period", {"start": "PT0S"})
    adaptation = ET.SubElement(
        period,
        f"{{{_MPD_NS}}}AdaptationSet",
        {"contentType": "video", "segmentAlignment": "true"},
    )
    for level in range(manifest.num_tracks):
        representation = ET.SubElement(
            adaptation,
            f"{{{_MPD_NS}}}Representation",
            {
                "id": f"track{level}",
                "bandwidth": str(int(round(manifest.declared_avg_bitrates_bps[level]))),
                "height": str(manifest.resolutions[level]),
                f"{{{_REPRO_NS}}}peakBandwidth": str(
                    int(round(manifest.declared_peak_bitrates_bps[level]))
                ),
            },
        )
        segment_list = ET.SubElement(
            representation,
            f"{{{_MPD_NS}}}SegmentList",
            {
                "duration": str(int(round(manifest.chunk_duration_s * 1000))),
                "timescale": "1000",
            },
        )
        for index in range(manifest.num_chunks):
            ET.SubElement(
                segment_list,
                f"{{{_MPD_NS}}}SegmentURL",
                {
                    "media": f"track{level}/seg{index:05d}.m4s",
                    f"{{{_REPRO_NS}}}sizeBits": f"{manifest.chunk_sizes_bits[level, index]:.3f}",
                },
            )
    ET.indent(mpd)
    return ET.tostring(mpd, encoding="unicode", xml_declaration=True)


def manifest_from_mpd(document: str) -> Manifest:
    """Parse an MPD produced by :func:`manifest_to_mpd` back to a manifest."""
    root = ET.fromstring(document)
    if root.tag != f"{{{_MPD_NS}}}MPD":
        raise ValueError(f"not an MPD document (root {root.tag})")
    video_name = root.get(f"{{{_REPRO_NS}}}videoName", "unnamed")

    representations = root.findall(
        f"{{{_MPD_NS}}}Period/{{{_MPD_NS}}}AdaptationSet/{{{_MPD_NS}}}Representation"
    )
    if not representations:
        raise ValueError("MPD contains no representations")

    sizes: List[np.ndarray] = []
    averages: List[float] = []
    peaks: List[float] = []
    resolutions: List[int] = []
    chunk_duration_s = None
    for representation in representations:
        averages.append(float(representation.get("bandwidth")))
        peaks.append(float(representation.get(f"{{{_REPRO_NS}}}peakBandwidth")))
        resolutions.append(int(representation.get("height")))
        segment_list = representation.find(f"{{{_MPD_NS}}}SegmentList")
        if segment_list is None:
            raise ValueError("representation lacks a SegmentList")
        duration = float(segment_list.get("duration")) / float(segment_list.get("timescale"))
        if chunk_duration_s is None:
            chunk_duration_s = duration
        elif abs(duration - chunk_duration_s) > 1e-9:
            raise ValueError("tracks disagree on segment duration")
        sizes.append(
            np.array(
                [
                    float(url.get(f"{{{_REPRO_NS}}}sizeBits"))
                    for url in segment_list.findall(f"{{{_MPD_NS}}}SegmentURL")
                ]
            )
        )
    lengths = {arr.size for arr in sizes}
    if len(lengths) != 1:
        raise ValueError(f"tracks disagree on segment count: {sorted(lengths)}")
    return Manifest(
        video_name=video_name,
        chunk_duration_s=float(chunk_duration_s),
        chunk_sizes_bits=np.stack(sizes),
        declared_avg_bitrates_bps=np.array(averages),
        declared_peak_bitrates_bps=np.array(peaks),
        resolutions=tuple(resolutions),
    )


# ----------------------------------------------------------------------
# HLS playlists
# ----------------------------------------------------------------------
def manifest_to_hls(manifest: Manifest) -> Dict[str, str]:
    """Serialize as HLS: returns ``{filename: contents}``.

    ``master.m3u8`` lists the variants; ``trackN.m3u8`` holds each
    track's segment list with per-segment sizes.
    """
    files: Dict[str, str] = {}
    master = ["#EXTM3U", "#EXT-X-VERSION:7", f"# video: {manifest.video_name}"]
    for level in range(manifest.num_tracks):
        avg = int(round(manifest.declared_avg_bitrates_bps[level]))
        peak = int(round(manifest.declared_peak_bitrates_bps[level]))
        height = manifest.resolutions[level]
        master.append(
            "#EXT-X-STREAM-INF:"
            f"BANDWIDTH={peak},AVERAGE-BANDWIDTH={avg},RESOLUTION={_width_for(height)}x{height}"
        )
        master.append(f"track{level}.m3u8")
        media = [
            "#EXTM3U",
            "#EXT-X-VERSION:7",
            f"#EXT-X-TARGETDURATION:{int(np.ceil(manifest.chunk_duration_s))}",
            "#EXT-X-PLAYLIST-TYPE:VOD",
        ]
        for index in range(manifest.num_chunks):
            media.append(f"#EXTINF:{manifest.chunk_duration_s:.3f},")
            media.append(f"#EXT-X-SIZE:{manifest.chunk_sizes_bits[level, index]:.3f}")
            media.append(f"track{level}/seg{index:05d}.ts")
        media.append("#EXT-X-ENDLIST")
        files[f"track{level}.m3u8"] = "\n".join(media) + "\n"
    files["master.m3u8"] = "\n".join(master) + "\n"
    return files


def _width_for(height: int) -> int:
    """16:9 width for a ladder height (what the encodes use)."""
    widths = {144: 256, 240: 426, 360: 640, 480: 854, 720: 1280, 1080: 1920, 2160: 3840}
    return widths.get(height, int(round(height * 16 / 9)))


def manifest_from_hls(files: Dict[str, str]) -> Manifest:
    """Parse playlists produced by :func:`manifest_to_hls`."""
    try:
        master = files["master.m3u8"]
    except KeyError:
        raise ValueError("missing master.m3u8") from None

    video_name = "unnamed"
    variants: List[Tuple[float, float, int, str]] = []  # (avg, peak, height, uri)
    pending = None
    for line in master.splitlines():
        line = line.strip()
        if line.startswith("# video: "):
            video_name = line[len("# video: "):]
        elif line.startswith("#EXT-X-STREAM-INF:"):
            attrs = dict(
                part.split("=", 1) for part in line.split(":", 1)[1].split(",") if "=" in part
            )
            height = int(attrs["RESOLUTION"].split("x")[1])
            pending = (float(attrs["AVERAGE-BANDWIDTH"]), float(attrs["BANDWIDTH"]), height)
        elif pending is not None and line and not line.startswith("#"):
            variants.append((*pending, line))
            pending = None
    if not variants:
        raise ValueError("master playlist lists no variants")

    sizes: List[np.ndarray] = []
    durations: List[float] = []
    for avg, peak, height, uri in variants:
        try:
            media = files[uri]
        except KeyError:
            raise ValueError(f"missing media playlist {uri!r}") from None
        track_sizes: List[float] = []
        duration = None
        for line in media.splitlines():
            line = line.strip()
            if line.startswith("#EXTINF:"):
                duration = float(line.split(":", 1)[1].rstrip(","))
            elif line.startswith("#EXT-X-SIZE:"):
                track_sizes.append(float(line.split(":", 1)[1]))
        if duration is None or not track_sizes:
            raise ValueError(f"media playlist {uri!r} has no segments")
        sizes.append(np.array(track_sizes))
        durations.append(duration)
    if len({arr.size for arr in sizes}) != 1:
        raise ValueError("tracks disagree on segment count")
    return Manifest(
        video_name=video_name,
        chunk_duration_s=durations[0],
        chunk_sizes_bits=np.stack(sizes),
        declared_avg_bitrates_bps=np.array([v[0] for v in variants]),
        declared_peak_bitrates_bps=np.array([v[1] for v in variants]),
        resolutions=tuple(v[2] for v in variants),
    )


# ----------------------------------------------------------------------
# Stable content digests + buffer-backed construction
# ----------------------------------------------------------------------
# The session store keys results by *content*: two manifests (or videos)
# must digest equally iff every byte of client-visible data matches, and
# the digest must be identical across processes and fork/spawn start
# methods. BLAKE2 over explicit bytes gives that (``hash()`` is salted
# per process; ``id()`` is an address).


def _hash_array(hasher: "hashlib._Hash", array: np.ndarray) -> None:
    contiguous = np.ascontiguousarray(array, dtype=np.float64)
    hasher.update(contiguous.dtype.str.encode("ascii"))
    hasher.update(repr(contiguous.shape).encode("ascii"))
    hasher.update(contiguous.tobytes())


def _hash_text(hasher: "hashlib._Hash", *parts: object) -> None:
    for part in parts:
        hasher.update(str(part).encode("utf-8"))
        hasher.update(b"\x00")


def manifest_digest(manifest: Manifest) -> str:
    """Stable content digest (hex) of the client-visible manifest."""
    hasher = hashlib.blake2b(digest_size=16)
    _hash_text(
        hasher,
        manifest.video_name,
        float(manifest.chunk_duration_s).hex(),
        manifest.resolutions,
    )
    _hash_array(hasher, manifest.chunk_sizes_bits)
    _hash_array(hasher, manifest.declared_avg_bitrates_bps)
    _hash_array(hasher, manifest.declared_peak_bitrates_bps)
    if manifest.quality is not None:
        for metric in sorted(manifest.quality):
            _hash_text(hasher, metric)
            _hash_array(hasher, manifest.quality[metric])
    return hasher.hexdigest()


def video_digest(video: VideoAsset) -> str:
    """Stable content digest (hex) of a full video asset.

    Covers everything a session can observe: the manifest data, per-chunk
    quality arrays, and the synthesis ground truth (complexity/SI/TI)
    that the chunk classifier and the quality summaries read.
    """
    hasher = hashlib.blake2b(digest_size=16)
    _hash_text(
        hasher,
        video.name,
        video.genre,
        video.codec,
        video.source,
        video.encoding,
        float(video.cap_ratio).hex(),
    )
    for track in video.tracks:
        _hash_text(
            hasher,
            track.level,
            track.resolution,
            float(track.chunk_duration_s).hex(),
            float(track.declared_avg_bitrate_bps).hex(),
        )
        _hash_array(hasher, track.chunk_sizes_bits)
        for metric in sorted(track.qualities):
            _hash_text(hasher, metric)
            _hash_array(hasher, track.qualities[metric])
    _hash_array(hasher, video.complexity)
    _hash_array(hasher, video.si)
    _hash_array(hasher, video.ti)
    return hasher.hexdigest()


def manifest_from_tables(
    video_name: str,
    chunk_duration_s: float,
    chunk_sizes_bits: np.ndarray,
    declared_avg_bitrates_bps: np.ndarray,
    declared_peak_bitrates_bps: np.ndarray,
    resolutions: Tuple[int, ...],
    quality: Optional[Dict[str, np.ndarray]] = None,
) -> Manifest:
    """Build a manifest around existing size/quality tables without copying.

    ``Manifest.__post_init__`` runs ``np.asarray(..., dtype=float)``, which
    is a no-op for float64 inputs — so passing views into a shared-memory
    block (the sweep engine's zero-copy data plane) yields a manifest whose
    tables alias the shared buffer. Callers own the buffer lifetime: the
    views must stay mapped for as long as the manifest is used.
    """
    return Manifest(
        video_name=video_name,
        chunk_duration_s=chunk_duration_s,
        chunk_sizes_bits=chunk_sizes_bits,
        declared_avg_bitrates_bps=declared_avg_bitrates_bps,
        declared_peak_bitrates_bps=declared_peak_bitrates_bps,
        resolutions=resolutions,
        quality=quality,
    )
