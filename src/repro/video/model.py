"""Core data model for ABR videos: chunks, tracks, videos, and manifests.

The model mirrors the entities in DASH/HLS streaming as the paper uses them:

- a **video** is encoded into several independent **tracks** (the paper uses
  six, 144p through 1080p), each holding the same content at a different
  bitrate/quality;
- each track is segmented into fixed-duration **chunks** (2 s for the
  FFmpeg encodes, ~5 s for the YouTube encodes);
- the **manifest** is the client-visible view: per-chunk sizes for every
  track (available in DASH manifests and recent HLS), declared average and
  peak bitrates, and chunk durations — but *not* scene complexity or
  per-chunk quality, which commercial ABR pipelines do not expose (§3.2).

Sizes are stored in bits and rates in bits/second (see
:mod:`repro.util.units`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.util.stats import coefficient_of_variation
from repro.util.validation import check_positive

__all__ = [
    "QUALITY_METRICS",
    "Track",
    "VideoAsset",
    "Manifest",
]

#: Quality metrics attached to every encoded chunk, matching §3.1.2.
QUALITY_METRICS = ("vmaf_tv", "vmaf_phone", "psnr", "ssim")


@dataclass
class Track:
    """One encoded rendition (track/level) of a video.

    Attributes
    ----------
    level:
        Zero-based index in the ladder; higher means higher quality.
    resolution:
        Vertical resolution in pixels (144, 240, ... 1080).
    chunk_sizes_bits:
        Size of each chunk in bits, in playback order.
    chunk_duration_s:
        Playback duration of every chunk in seconds.
    declared_avg_bitrate_bps:
        The average bitrate advertised in the manifest.
    qualities:
        Mapping from metric name (see :data:`QUALITY_METRICS`) to a
        per-chunk array of quality scores.
    """

    level: int
    resolution: int
    chunk_sizes_bits: np.ndarray
    chunk_duration_s: float
    declared_avg_bitrate_bps: float
    qualities: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.chunk_sizes_bits = np.asarray(self.chunk_sizes_bits, dtype=float)
        if self.chunk_sizes_bits.ndim != 1 or self.chunk_sizes_bits.size == 0:
            raise ValueError("chunk_sizes_bits must be a non-empty 1-D array")
        if np.any(self.chunk_sizes_bits <= 0):
            raise ValueError("all chunk sizes must be positive")
        check_positive(self.chunk_duration_s, "chunk_duration_s")
        check_positive(self.declared_avg_bitrate_bps, "declared_avg_bitrate_bps")
        for metric, values in self.qualities.items():
            values = np.asarray(values, dtype=float)
            if values.shape != self.chunk_sizes_bits.shape:
                raise ValueError(
                    f"quality array {metric!r} has shape {values.shape}, "
                    f"expected {self.chunk_sizes_bits.shape}"
                )
            self.qualities[metric] = values

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the track."""
        return int(self.chunk_sizes_bits.size)

    @property
    def duration_s(self) -> float:
        """Total playback duration of the track in seconds."""
        return self.num_chunks * self.chunk_duration_s

    def chunk_bitrate_bps(self, index: int) -> float:
        """Instantaneous bitrate of chunk ``index`` (size / duration)."""
        return float(self.chunk_sizes_bits[index]) / self.chunk_duration_s

    @property
    def bitrates_bps(self) -> np.ndarray:
        """Per-chunk bitrates in bits/second."""
        return self.chunk_sizes_bits / self.chunk_duration_s

    @property
    def average_bitrate_bps(self) -> float:
        """Actual average bitrate over the whole track."""
        return float(np.mean(self.bitrates_bps))

    @property
    def peak_bitrate_bps(self) -> float:
        """Maximum per-chunk bitrate, the value HLS calls PEAK-BANDWIDTH."""
        return float(np.max(self.bitrates_bps))

    @property
    def peak_to_average_ratio(self) -> float:
        """Peak bitrate over average bitrate; §2 reports 1.1–2.4 for 2x cap."""
        return self.peak_bitrate_bps / self.average_bitrate_bps

    @property
    def bitrate_cov(self) -> float:
        """Coefficient of variation of per-chunk bitrate; §2 reports 0.3–0.6."""
        return coefficient_of_variation(self.bitrates_bps)

    def quality(self, metric: str, index: int) -> float:
        """Quality score of chunk ``index`` under ``metric``."""
        try:
            values = self.qualities[metric]
        except KeyError:
            raise KeyError(
                f"track has no quality metric {metric!r}; "
                f"available: {sorted(self.qualities)}"
            ) from None
        return float(values[index])


@dataclass
class VideoAsset:
    """A fully encoded VBR (or CBR) video with its encoding ground truth.

    Besides the client-visible tracks, the asset retains the synthesis
    ground truth used by the characterization analyses of §3: per-chunk
    scene complexity and the SI/TI values of the underlying (simulated)
    raw footage.
    """

    name: str
    genre: str
    codec: str
    source: str
    tracks: List[Track]
    complexity: np.ndarray
    si: np.ndarray
    ti: np.ndarray
    cap_ratio: float
    encoding: str = "vbr"

    def __post_init__(self) -> None:
        if not self.tracks:
            raise ValueError("a video needs at least one track")
        self.complexity = np.asarray(self.complexity, dtype=float)
        self.si = np.asarray(self.si, dtype=float)
        self.ti = np.asarray(self.ti, dtype=float)
        n = self.tracks[0].num_chunks
        for track in self.tracks:
            if track.num_chunks != n:
                raise ValueError("all tracks must have the same chunk count")
        for label, arr in (("complexity", self.complexity), ("si", self.si), ("ti", self.ti)):
            if arr.shape != (n,):
                raise ValueError(f"{label} must have one entry per chunk")
        levels = [track.level for track in self.tracks]
        if levels != sorted(set(levels)):
            raise ValueError("track levels must be unique and ascending")
        if self.encoding not in ("vbr", "cbr"):
            raise ValueError(f"encoding must be 'vbr' or 'cbr', got {self.encoding!r}")

    @property
    def num_tracks(self) -> int:
        """Number of renditions in the ladder."""
        return len(self.tracks)

    @property
    def num_chunks(self) -> int:
        """Number of chunks per track."""
        return self.tracks[0].num_chunks

    @property
    def chunk_duration_s(self) -> float:
        """Chunk playback duration in seconds (uniform across tracks)."""
        return self.tracks[0].chunk_duration_s

    @property
    def duration_s(self) -> float:
        """Total video duration in seconds."""
        return self.tracks[0].duration_s

    def track(self, level: int) -> Track:
        """Return the track at ladder position ``level`` (0-based)."""
        if not 0 <= level < self.num_tracks:
            raise IndexError(f"level {level} out of range [0, {self.num_tracks})")
        return self.tracks[level]

    def chunk_size_bits(self, level: int, index: int) -> float:
        """Size in bits of chunk ``index`` at ``level``."""
        return float(self.track(level).chunk_sizes_bits[index])

    def quality(self, metric: str, level: int, index: int) -> float:
        """Quality of chunk ``index`` at ``level`` under ``metric``."""
        return self.track(level).quality(metric, index)

    def manifest(self, include_quality: bool = False) -> "Manifest":
        """Build the client-visible manifest.

        Parameters
        ----------
        include_quality:
            When True, per-chunk VMAF values are attached. This models the
            extra server-side support PANDA/CQ requires (§6.1); standard
            DASH/HLS manifests carry sizes only, so the default is False.
        """
        quality = None
        if include_quality:
            quality = {
                metric: np.stack([track.qualities[metric] for track in self.tracks])
                for metric in self.tracks[0].qualities
            }
        return Manifest(
            video_name=self.name,
            chunk_duration_s=self.chunk_duration_s,
            chunk_sizes_bits=np.stack([track.chunk_sizes_bits for track in self.tracks]),
            declared_avg_bitrates_bps=np.array(
                [track.declared_avg_bitrate_bps for track in self.tracks]
            ),
            declared_peak_bitrates_bps=np.array(
                [track.peak_bitrate_bps for track in self.tracks]
            ),
            resolutions=tuple(track.resolution for track in self.tracks),
            quality=quality,
        )

    def describe(self) -> str:
        """Human-readable one-paragraph summary used by examples and reports."""
        lines = [
            f"{self.name} ({self.genre}, {self.codec}, {self.source}, "
            f"{self.encoding.upper()}, cap {self.cap_ratio:g}x): "
            f"{self.num_chunks} chunks x {self.chunk_duration_s:g}s, "
            f"{self.num_tracks} tracks"
        ]
        for track in self.tracks:
            lines.append(
                f"  L{track.level} {track.resolution:>4}p  "
                f"avg {track.average_bitrate_bps / 1e6:6.3f} Mbps  "
                f"peak/avg {track.peak_to_average_ratio:4.2f}  "
                f"CoV {track.bitrate_cov:4.2f}"
            )
        return "\n".join(lines)


@dataclass
class Manifest:
    """Client-visible description of a video, as delivered by DASH/HLS.

    ``chunk_sizes_bits`` is an ``(num_tracks, num_chunks)`` array: the
    per-chunk size information that DASH exposes in the MPD (and that HLS
    recently added), which §4 argues every VBR-aware scheme must use.
    """

    video_name: str
    chunk_duration_s: float
    chunk_sizes_bits: np.ndarray
    declared_avg_bitrates_bps: np.ndarray
    declared_peak_bitrates_bps: np.ndarray
    resolutions: Tuple[int, ...]
    quality: Optional[Dict[str, np.ndarray]] = None

    def __post_init__(self) -> None:
        self.chunk_sizes_bits = np.asarray(self.chunk_sizes_bits, dtype=float)
        if self.chunk_sizes_bits.ndim != 2:
            raise ValueError("chunk_sizes_bits must be (num_tracks, num_chunks)")
        check_positive(self.chunk_duration_s, "chunk_duration_s")
        self.declared_avg_bitrates_bps = np.asarray(self.declared_avg_bitrates_bps, dtype=float)
        self.declared_peak_bitrates_bps = np.asarray(self.declared_peak_bitrates_bps, dtype=float)
        n_tracks = self.chunk_sizes_bits.shape[0]
        if self.declared_avg_bitrates_bps.shape != (n_tracks,):
            raise ValueError("declared_avg_bitrates_bps must have one entry per track")
        if self.declared_peak_bitrates_bps.shape != (n_tracks,):
            raise ValueError("declared_peak_bitrates_bps must have one entry per track")
        if len(self.resolutions) != n_tracks:
            raise ValueError("resolutions must have one entry per track")
        # Hot-path lookup table, built lazily (not a dataclass field, so
        # equality and repr stay defined by the manifest data alone).
        self._size_rows: Optional[Tuple[Tuple[float, ...], ...]] = None

    @property
    def size_rows(self) -> Tuple[Tuple[float, ...], ...]:
        """Per-track chunk-size rows as nested tuples of Python floats.

        ``size_rows[level][index]`` equals :meth:`chunk_size_bits` bit for
        bit (``ndarray.tolist`` preserves the doubles) but costs two tuple
        lookups instead of a 2-D ndarray index plus a numpy-scalar
        conversion — the difference matters in the per-chunk session loop
        and in schemes that scan the ladder per decision (RBA, BBA).
        """
        rows = self._size_rows
        if rows is None:
            rows = tuple(tuple(row) for row in self.chunk_sizes_bits.tolist())
            self._size_rows = rows
        return rows

    @property
    def num_tracks(self) -> int:
        """Number of tracks in the ladder."""
        return int(self.chunk_sizes_bits.shape[0])

    @property
    def num_chunks(self) -> int:
        """Number of chunks per track."""
        return int(self.chunk_sizes_bits.shape[1])

    @property
    def has_quality(self) -> bool:
        """Whether per-chunk quality values were attached (PANDA/CQ only)."""
        return self.quality is not None

    def chunk_size_bits(self, level: int, index: int) -> float:
        """Size in bits of chunk ``index`` at track ``level``."""
        return float(self.chunk_sizes_bits[level, index])

    def chunk_bitrate_bps(self, level: int, index: int) -> float:
        """Instantaneous bitrate of chunk ``index`` at track ``level``."""
        return self.chunk_size_bits(level, index) / self.chunk_duration_s

    def track_bitrates_bps(self, level: int) -> np.ndarray:
        """Per-chunk bitrates of track ``level``."""
        return self.chunk_sizes_bits[level] / self.chunk_duration_s

    def quality_value(self, metric: str, level: int, index: int) -> float:
        """Per-chunk quality (only when built with ``include_quality=True``)."""
        if self.quality is None:
            raise ValueError(
                "this manifest carries no quality information; build it with "
                "include_quality=True (models PANDA/CQ-style server support)"
            )
        return float(self.quality[metric][level, index])
