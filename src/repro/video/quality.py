"""Rate–quality surfaces: VMAF (TV / phone), PSNR, and SSIM models.

The paper measures chunk quality with the ``vmaf`` tool against raw or
2160p reference footage. We replace the measurement with an analytic
surface ``quality(resolution, bits, duration, complexity)`` with the
properties every practical codec study reports:

1. quality is increasing and saturating in bits-per-pixel (logistic in
   log-bpp, the standard shape of rate–distortion curves);
2. complex scenes need more bits for the same quality — the complexity
   enters as a multiplicative *bit-demand* factor on bpp, so a Q4 chunk
   given the same bpp as a Q1 chunk scores much lower (Fig. 3);
3. low resolutions cap out early even with generous bitrate, because the
   score is computed against a high-resolution reference (upscaling
   penalty); the phone model is more forgiving of low resolutions than
   the TV model, matching VMAF's two released models;
4. H.265 reaches the same quality at ~60–70% of the H.264 bitrate (§6.5);
   this enters through the encoder's codec efficiency, not this module.

PSNR and SSIM are monotone transforms of the same latent score with
metric-appropriate output ranges (PSNR ~26–50 dB, SSIM ~0.7–1.0),
sufficient to reproduce the orderings in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.util.validation import check_in_range, check_positive

__all__ = [
    "RESOLUTION_PIXELS",
    "QualityModel",
    "DEFAULT_QUALITY_MODEL",
    "complexity_bit_demand",
]

#: Pixel counts of the six ladder resolutions used throughout the paper.
RESOLUTION_PIXELS: Dict[int, int] = {
    144: 256 * 144,
    240: 426 * 240,
    360: 640 * 360,
    480: 854 * 480,
    720: 1280 * 720,
    1080: 1920 * 1080,
    2160: 3840 * 2160,
}

#: Upscaling factor applied to the latent score on a large (TV) screen.
_TV_RESOLUTION_CEILING: Dict[int, float] = {
    144: 0.30,
    240: 0.46,
    360: 0.62,
    480: 0.78,
    720: 0.92,
    1080: 1.00,
    2160: 1.00,
}

#: The phone model tolerates low resolutions better (small screen).
_PHONE_RESOLUTION_CEILING: Dict[int, float] = {
    144: 0.44,
    240: 0.62,
    360: 0.78,
    480: 0.90,
    720: 0.98,
    1080: 1.00,
    2160: 1.00,
}


def complexity_bit_demand(complexity: float, demand_exponent: float = 3.4) -> float:
    """Bits-per-pixel multiplier a scene of given complexity needs.

    Defined as ``2 ** (demand_exponent * (complexity - 0.35))`` so that a
    middling scene (c = 0.35) has demand 1, the simplest scenes need a
    fraction of the bits, and the most complex several times more — the
    spread that makes a 2x VBR cap bind on complex scenes (§3.3).
    """
    check_in_range(complexity, "complexity", 0.0, 1.0)
    return float(2.0 ** (demand_exponent * (complexity - 0.35)))


@dataclass(frozen=True)
class QualityModel:
    """Analytic quality surface with tunable calibration constants.

    Attributes
    ----------
    frames_per_second:
        Frame rate used to convert chunk bits to bits-per-pixel.
    half_quality_bpp:
        Bits-per-pixel (for a demand-1 scene) at which the latent score is
        0.5; the midpoint of the logistic.
    logistic_width:
        Width (in log2-bpp units) of the logistic transition.
    demand_exponent:
        Exponent of :func:`complexity_bit_demand`.
    hardness, hardness_midpoint, hardness_width:
        Complexity-hardness ceiling. §3.3 observes Q4 chunks stay below
        Q1–Q3 quality even at a 4x cap, "because it is inherently very
        difficult to encode complex scenes to reach the same quality as
        simple scenes"; we model that irreducible penalty as a
        multiplicative ceiling on the latent score,
        ``1 - hardness * sigmoid((c - hardness_midpoint) / hardness_width)``,
        which leaves simple-to-moderate scenes untouched and penalizes the
        top-complexity scenes — the ones that land in the top size
        quartile — by up to ``hardness``.
    """

    frames_per_second: float = 24.0
    half_quality_bpp: float = 0.0085
    logistic_width: float = 1.15
    demand_exponent: float = 3.4
    hardness: float = 0.26
    hardness_midpoint: float = 0.62
    hardness_width: float = 0.09

    def __post_init__(self) -> None:
        check_positive(self.frames_per_second, "frames_per_second")
        check_positive(self.half_quality_bpp, "half_quality_bpp")
        check_positive(self.logistic_width, "logistic_width")
        check_positive(self.demand_exponent, "demand_exponent")
        check_in_range(self.hardness, "hardness", 0.0, 0.6)
        check_in_range(self.hardness_midpoint, "hardness_midpoint", 0.0, 1.0)
        check_positive(self.hardness_width, "hardness_width")

    # ------------------------------------------------------------------
    # Latent score
    # ------------------------------------------------------------------
    def latent_score(
        self,
        resolution: int,
        chunk_bits: float,
        chunk_duration_s: float,
        complexity: float,
    ) -> float:
        """Latent quality in (0, 1) before metric-specific shaping.

        The latent score is a logistic in log2 of *effective* bits per
        pixel — actual bpp divided by the scene's bit demand — scaled by
        the complexity hardness ceiling (see ``hardness``).
        """
        if resolution not in RESOLUTION_PIXELS:
            raise ValueError(
                f"unknown resolution {resolution}; known: {sorted(RESOLUTION_PIXELS)}"
            )
        check_positive(chunk_bits, "chunk_bits")
        check_positive(chunk_duration_s, "chunk_duration_s")
        pixels_per_chunk = RESOLUTION_PIXELS[resolution] * self.frames_per_second * chunk_duration_s
        bpp = chunk_bits / pixels_per_chunk
        demand = complexity_bit_demand(complexity, self.demand_exponent)
        x = (np.log2(bpp / demand) - np.log2(self.half_quality_bpp)) / self.logistic_width
        return float(self.hardness_ceiling(complexity) / (1.0 + np.exp(-x)))

    def hardness_ceiling(self, complexity: float) -> float:
        """Maximum latent score reachable at a given scene complexity."""
        check_in_range(complexity, "complexity", 0.0, 1.0)
        gate = 1.0 / (1.0 + np.exp(-(complexity - self.hardness_midpoint) / self.hardness_width))
        return float(1.0 - self.hardness * gate)

    # ------------------------------------------------------------------
    # Metric surfaces
    # ------------------------------------------------------------------
    def vmaf(
        self,
        resolution: int,
        chunk_bits: float,
        chunk_duration_s: float,
        complexity: float,
        model: str = "tv",
    ) -> float:
        """VMAF score in [0, 100] under the TV or phone viewing model."""
        if model == "tv":
            ceiling = _TV_RESOLUTION_CEILING[resolution]
        elif model == "phone":
            ceiling = _PHONE_RESOLUTION_CEILING[resolution]
        else:
            raise ValueError(f"model must be 'tv' or 'phone', got {model!r}")
        latent = self.latent_score(resolution, chunk_bits, chunk_duration_s, complexity)
        return 100.0 * ceiling * latent

    def psnr(
        self,
        resolution: int,
        chunk_bits: float,
        chunk_duration_s: float,
        complexity: float,
    ) -> float:
        """Median-frame PSNR in dB (≈26 dB poor to ≈50 dB transparent)."""
        latent = self.latent_score(resolution, chunk_bits, chunk_duration_s, complexity)
        ceiling = _TV_RESOLUTION_CEILING[resolution]
        return 26.0 + 24.0 * ceiling * latent

    def ssim(
        self,
        resolution: int,
        chunk_bits: float,
        chunk_duration_s: float,
        complexity: float,
    ) -> float:
        """SSIM in [0, 1] (practically 0.70–0.995 for watchable video)."""
        latent = self.latent_score(resolution, chunk_bits, chunk_duration_s, complexity)
        ceiling = _TV_RESOLUTION_CEILING[resolution]
        return 0.70 + 0.295 * ceiling * latent**0.8

    def all_metrics(
        self,
        resolution: int,
        chunk_bits: float,
        chunk_duration_s: float,
        complexity: float,
    ) -> Dict[str, float]:
        """All four metrics of §3.1.2 for one encoded chunk."""
        return {
            "vmaf_tv": self.vmaf(resolution, chunk_bits, chunk_duration_s, complexity, "tv"),
            "vmaf_phone": self.vmaf(resolution, chunk_bits, chunk_duration_s, complexity, "phone"),
            "psnr": self.psnr(resolution, chunk_bits, chunk_duration_s, complexity),
            "ssim": self.ssim(resolution, chunk_bits, chunk_duration_s, complexity),
        }

    # ------------------------------------------------------------------
    # Inverse: bits needed for a target latent score
    # ------------------------------------------------------------------
    def bits_for_latent(
        self,
        resolution: int,
        chunk_duration_s: float,
        complexity: float,
        latent: float,
    ) -> float:
        """Invert :meth:`latent_score`: bits needed for a target latent score.

        Used by the encoder model's first (CRF-like) pass, which aims at
        constant quality across scenes. When the hardness ceiling makes the
        target unreachable, the encoder spends what a near-saturated score
        (logistic value 0.95) costs and accepts the shortfall — this is
        the regime where complex scenes devour bits yet stay behind.
        """
        check_in_range(latent, "latent", 1e-6, 1.0 - 1e-6)
        pixels_per_chunk = RESOLUTION_PIXELS[resolution] * self.frames_per_second * chunk_duration_s
        ceiling = self.hardness_ceiling(complexity)
        logistic_target = min(latent / ceiling, 0.95)
        x = np.log(logistic_target / (1.0 - logistic_target))
        log2_bpp = x * self.logistic_width + np.log2(self.half_quality_bpp)
        demand = complexity_bit_demand(complexity, self.demand_exponent)
        return float(2.0**log2_bpp * demand * pixels_per_chunk)


#: Shared default instance; the dataset builder and tests use this.
DEFAULT_QUALITY_MODEL = QualityModel()
