"""Scene-complexity synthesis: the simulated "raw footage".

The paper's dataset is built from real raw videos (Xiph) plus YouTube
downloads; we cannot ship those, so this module generates the *statistical
ground truth* that the encoder model (:mod:`repro.video.synthesis`) and the
characterization analyses (§3) consume:

- a per-chunk **complexity** series in [0, 1]: videos are piecewise
  scenes (cuts every few seconds, lognormal durations) whose complexity is
  drawn from a genre-specific Beta distribution, with small within-scene
  drift — this is what makes VBR chunk sizes bursty at multiple timescales;
- per-chunk **SI/TI** values (ITU-T P.910 spatial/temporal information),
  generated as noisy monotone functions of complexity. The noise level is
  calibrated against Fig. 2: roughly 75–80% of Q4 chunks exceed
  (SI > 25, TI > 7) while only ~5–15% of Q1/Q2 chunks do.

Complexity is the single latent variable tying together bit demand
(complex scenes need more bits) and achievable quality (complex scenes are
harder to encode), which is exactly the coupling the paper characterizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.util.validation import check_in_range, check_positive

__all__ = ["GenreProfile", "GENRE_PROFILES", "SceneTimeline", "synthesize_scene_timeline"]


@dataclass(frozen=True)
class GenreProfile:
    """Genre-level knobs for scene synthesis.

    Attributes
    ----------
    complexity_alpha, complexity_beta:
        Beta-distribution shape for per-scene complexity. Sports/action
        content skews complex; nature documentaries skew simple with
        occasional bursts.
    mean_scene_s:
        Mean scene (shot) duration in seconds; action content cuts faster.
    scene_sigma:
        Lognormal sigma of scene durations.
    motion_weight:
        How strongly complexity expresses as temporal (TI) vs spatial (SI)
        information; high-motion genres have higher TI for the same
        complexity.
    """

    complexity_alpha: float
    complexity_beta: float
    mean_scene_s: float
    scene_sigma: float
    motion_weight: float

    def __post_init__(self) -> None:
        check_positive(self.complexity_alpha, "complexity_alpha")
        check_positive(self.complexity_beta, "complexity_beta")
        check_positive(self.mean_scene_s, "mean_scene_s")
        check_positive(self.scene_sigma, "scene_sigma")
        check_in_range(self.motion_weight, "motion_weight", 0.0, 2.0)


#: Genres appearing in the paper's dataset (§2): four Xiph titles
#: (animation / science fiction) plus YouTube sports, animal, nature and
#: action-movie content.
GENRE_PROFILES: Dict[str, GenreProfile] = {
    "animation": GenreProfile(2.2, 2.6, 7.0, 0.65, 0.9),
    "scifi": GenreProfile(2.4, 2.4, 6.0, 0.70, 1.0),
    "sports": GenreProfile(3.4, 1.7, 5.0, 0.60, 1.4),
    "animal": GenreProfile(2.0, 2.8, 9.0, 0.55, 0.8),
    "nature": GenreProfile(1.8, 3.0, 10.0, 0.55, 0.7),
    "action": GenreProfile(3.0, 1.9, 4.0, 0.75, 1.3),
}


@dataclass
class SceneTimeline:
    """Per-chunk ground truth produced by scene synthesis.

    Attributes
    ----------
    complexity:
        Per-chunk scene complexity in [0, 1].
    si, ti:
        Per-chunk spatial / temporal information values, on the usual
        P.910-ish scales (SI roughly 5–95, TI roughly 0–60).
    scene_ids:
        Which scene each chunk belongs to, for scene-level analyses.
    chunk_duration_s:
        Duration used to map scenes to chunks.
    """

    complexity: np.ndarray
    si: np.ndarray
    ti: np.ndarray
    scene_ids: np.ndarray
    chunk_duration_s: float
    genre: str = "animation"
    texture: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.texture is None:
            self.texture = np.ones_like(self.complexity)

    @property
    def num_chunks(self) -> int:
        """Number of chunks covered by the timeline."""
        return int(self.complexity.size)

    @property
    def num_scenes(self) -> int:
        """Number of distinct scenes."""
        return int(self.scene_ids.max()) + 1 if self.scene_ids.size else 0


def _scene_durations(rng: np.random.Generator, profile: GenreProfile, total_s: float) -> List[float]:
    """Draw lognormal scene durations until they cover ``total_s`` seconds."""
    durations: List[float] = []
    covered = 0.0
    # Lognormal parameterized so the mean matches profile.mean_scene_s.
    mu = np.log(profile.mean_scene_s) - 0.5 * profile.scene_sigma**2
    while covered < total_s:
        d = float(rng.lognormal(mu, profile.scene_sigma))
        d = max(1.0, min(d, total_s))  # scenes of at least one second
        durations.append(d)
        covered += d
    durations[-1] -= covered - total_s
    if durations[-1] <= 0:
        durations.pop()
    return durations


def _si_ti_from_complexity(
    rng: np.random.Generator, complexity: np.ndarray, profile: GenreProfile
) -> Tuple[np.ndarray, np.ndarray]:
    """Map complexity to noisy SI/TI observations.

    Calibration targets (Fig. 2, thresholds SI > 25 and TI > 7): the top
    size quartile should clear both thresholds ~75–80% of the time; the
    bottom quartile only ~5–15%.
    """
    n = complexity.size
    si = 6.0 + 45.0 * complexity + rng.normal(0.0, 9.0, size=n)
    ti = -0.5 + 15.5 * complexity * profile.motion_weight + rng.normal(0.0, 3.5, size=n)
    return np.clip(si, 0.0, 100.0), np.clip(ti, 0.0, 70.0)


def synthesize_scene_timeline(
    rng: np.random.Generator,
    genre: str,
    duration_s: float,
    chunk_duration_s: float,
) -> SceneTimeline:
    """Generate the per-chunk complexity / SI / TI ground truth for a video.

    Parameters
    ----------
    rng:
        Seeded generator (see :mod:`repro.util.rng`).
    genre:
        One of :data:`GENRE_PROFILES`.
    duration_s:
        Total video duration; the paper's clips are ~10 minutes.
    chunk_duration_s:
        Chunk length used to discretize scenes into per-chunk values
        (2 s for the FFmpeg encodes, 5 s for YouTube).
    """
    try:
        profile = GENRE_PROFILES[genre]
    except KeyError:
        raise ValueError(f"unknown genre {genre!r}; known: {sorted(GENRE_PROFILES)}") from None
    check_positive(duration_s, "duration_s")
    check_positive(chunk_duration_s, "chunk_duration_s")
    if chunk_duration_s > duration_s:
        raise ValueError("chunk_duration_s cannot exceed duration_s")

    durations = _scene_durations(rng, profile, duration_s)
    scene_complexities = rng.beta(profile.complexity_alpha, profile.complexity_beta, size=len(durations))

    num_chunks = int(round(duration_s / chunk_duration_s))
    complexity = np.empty(num_chunks, dtype=float)
    scene_ids = np.empty(num_chunks, dtype=int)

    boundaries = np.cumsum(durations)
    scene_index = 0
    # Small AR(1) drift inside a scene: panning, gradual motion changes.
    drift = 0.0
    for chunk in range(num_chunks):
        midpoint = (chunk + 0.5) * chunk_duration_s
        while scene_index < len(boundaries) - 1 and midpoint > boundaries[scene_index]:
            scene_index += 1
            drift = 0.0
        drift = 0.6 * drift + rng.normal(0.0, 0.035)
        complexity[chunk] = np.clip(scene_complexities[scene_index] + drift, 0.0, 1.0)
        scene_ids[chunk] = scene_index

    si, ti = _si_ti_from_complexity(rng, complexity, profile)
    # Per-chunk "texture" factor: content-specific encodability quirks
    # (film grain, smoke, water) that move a chunk's bit cost the same way
    # in every track — this is what keeps quartile categories consistent
    # across tracks (§3.1.1 Property 2) while still being noisy.
    texture = rng.lognormal(0.0, 0.10, size=num_chunks)
    return SceneTimeline(
        complexity=complexity,
        si=si,
        ti=ti,
        scene_ids=scene_ids,
        chunk_duration_s=chunk_duration_s,
        genre=genre,
        texture=texture,
    )
