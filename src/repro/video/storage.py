"""Dataset persistence: save/load encoded videos as ``.npz`` archives.

Building the full 16-video dataset takes a few seconds; persisting it
lets sweeps, notebooks, and external tools share one immutable copy —
and makes the synthetic dataset distributable the way the paper's
(copyright-bound) encodes could not be.

The archive stores everything :class:`~repro.video.model.VideoAsset`
holds: per-track chunk sizes and quality arrays, the scene ground truth
(complexity, SI, TI), and the encoding metadata.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.video.model import QUALITY_METRICS, Track, VideoAsset

__all__ = ["save_video", "load_video", "save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_video(video: VideoAsset, path: Path) -> None:
    """Serialize one video to a ``.npz`` archive."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "name": np.array(video.name),
        "genre": np.array(video.genre),
        "codec": np.array(video.codec),
        "source": np.array(video.source),
        "encoding": np.array(video.encoding),
        "cap_ratio": np.array(video.cap_ratio),
        "chunk_duration_s": np.array(video.chunk_duration_s),
        "complexity": video.complexity,
        "si": video.si,
        "ti": video.ti,
        "resolutions": np.array([track.resolution for track in video.tracks]),
        "declared_avg_bitrates_bps": np.array(
            [track.declared_avg_bitrate_bps for track in video.tracks]
        ),
        "chunk_sizes_bits": np.stack([track.chunk_sizes_bits for track in video.tracks]),
    }
    for metric in QUALITY_METRICS:
        arrays[f"quality_{metric}"] = np.stack(
            [track.qualities[metric] for track in video.tracks]
        )
    np.savez_compressed(path, **arrays)


def load_video(path: Path) -> VideoAsset:
    """Load a video saved by :func:`save_video`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        sizes = archive["chunk_sizes_bits"]
        resolutions = archive["resolutions"]
        averages = archive["declared_avg_bitrates_bps"]
        duration = float(archive["chunk_duration_s"])
        qualities = {
            metric: archive[f"quality_{metric}"] for metric in QUALITY_METRICS
        }
        tracks = [
            Track(
                level=level,
                resolution=int(resolutions[level]),
                chunk_sizes_bits=sizes[level],
                chunk_duration_s=duration,
                declared_avg_bitrate_bps=float(averages[level]),
                qualities={metric: qualities[metric][level] for metric in QUALITY_METRICS},
            )
            for level in range(sizes.shape[0])
        ]
        return VideoAsset(
            name=str(archive["name"]),
            genre=str(archive["genre"]),
            codec=str(archive["codec"]),
            source=str(archive["source"]),
            tracks=tracks,
            complexity=archive["complexity"],
            si=archive["si"],
            ti=archive["ti"],
            cap_ratio=float(archive["cap_ratio"]),
            encoding=str(archive["encoding"]),
        )


def save_dataset(videos: Dict[str, VideoAsset], directory: Path) -> None:
    """Save several videos, one ``<name>.npz`` per video."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name, video in videos.items():
        save_video(video, directory / f"{name}.npz")


def load_dataset(directory: Path) -> Dict[str, VideoAsset]:
    """Load every ``.npz`` video in a directory, keyed by video name."""
    directory = Path(directory)
    videos: Dict[str, VideoAsset] = {}
    for path in sorted(directory.glob("*.npz")):
        video = load_video(path)
        videos[video.name] = video
    if not videos:
        raise ValueError(f"no .npz videos found in {directory}")
    return videos
