"""Encoder models: capped two-pass VBR (the paper's pipeline) and CBR.

The paper's FFmpeg encodes follow Netflix's per-title "three-pass" recipe
(§2): a first constant-rate-factor (CRF) pass discovers how many bits each
scene needs for constant quality, then a two-pass VBR encode targets the
resulting average bitrate with the peak capped (2x the average per current
HLS authoring guidance, 4x in the §3.3/§6.6 variant). We model each pass:

**Pass 1 (CRF)** — invert the quality surface: for every chunk, compute the
bits that would achieve a fixed target latent quality given the chunk's
scene complexity. Summing over chunks yields the track's average bitrate,
which is how per-title encoding makes simple titles cheap and complex
titles expensive.

**Pass 2–3 (two-pass capped VBR)** — allocate the track's total bit budget
across chunks proportionally to ``demand ** allocation_efficiency``. Real
encoders do not fully equalize quality (``allocation_efficiency < 1``):
they under-allocate the most complex scenes, which—together with the
peak cap—is why Q4 chunks end up with *lower* quality despite *more* bits
(§3.1.2, the paper's central characterization finding). Capped chunks'
excess bits are redistributed to uncapped chunks (water-filling), then a
small lognormal encoder noise is applied, letting the realized peak exceed
the nominal cap slightly, as the paper observes (peak/avg up to 2.4 for a
2x cap).

Resolution-dependent demand compression: downscaling removes spatial
detail, so complexity moves chunk sizes less on the low tracks. This
reproduces §2's observation that the two lowest tracks show the least
bitrate variability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.validation import check_in_range
from repro.video.model import Track
from repro.video.quality import (
    DEFAULT_QUALITY_MODEL,
    RESOLUTION_PIXELS,
    QualityModel,
)
from repro.video.scene import SceneTimeline

__all__ = [
    "DEFAULT_LADDER",
    "CODEC_EFFICIENCY",
    "EncoderConfig",
    "encode_track_vbr",
    "encode_track_cbr",
    "encode_ladder",
    "apply_bitrate_cap",
]

#: The six-rung resolution ladder used throughout the paper (§2).
DEFAULT_LADDER: Tuple[int, ...] = (144, 240, 360, 480, 720, 1080)

#: Relative bitrate needed for equal quality, per codec (H.265 reaches the
#: same quality at roughly 65% of the H.264 bitrate, §6.5).
CODEC_EFFICIENCY: Dict[str, float] = {"h264": 1.00, "h265": 0.65}


def _resolution_demand_exponent(resolution: int, base_exponent: float) -> float:
    """Demand exponent after downscaling compression.

    144p/240p keep only ~55–65% of the complexity-driven size spread;
    1080p keeps all of it.
    """
    compression = {144: 0.55, 240: 0.65, 360: 0.80, 480: 0.90, 720: 0.97, 1080: 1.0, 2160: 1.0}
    return base_exponent * compression[resolution]


@dataclass(frozen=True)
class EncoderConfig:
    """Knobs of the simulated encoding pipeline.

    Attributes
    ----------
    codec:
        ``"h264"`` or ``"h265"``; selects the codec-efficiency factor.
    cap_ratio:
        Peak-to-average bitrate cap of the VBR encode (2.0 in the paper's
        main dataset, 4.0 in §6.6).
    target_latent:
        Latent quality targeted by the CRF pass (CRF 25 in the paper maps
        to "good viewing quality"; 0.78 latent yields ~80 VMAF at 1080p).
    allocation_efficiency:
        Exponent (< 1) describing how completely the two-pass encoder
        equalizes quality across scenes; 1.0 would be an ideal encoder.
    encoder_noise_sigma:
        Lognormal sigma of residual per-chunk size noise.
    """

    codec: str = "h264"
    cap_ratio: float = 2.0
    target_latent: float = 0.85
    allocation_efficiency: float = 0.90
    encoder_noise_sigma: float = 0.03

    def __post_init__(self) -> None:
        if self.codec not in CODEC_EFFICIENCY:
            raise ValueError(f"codec must be one of {sorted(CODEC_EFFICIENCY)}, got {self.codec!r}")
        check_in_range(self.cap_ratio, "cap_ratio", 1.05, 10.0)
        check_in_range(self.target_latent, "target_latent", 0.05, 0.98)
        check_in_range(self.allocation_efficiency, "allocation_efficiency", 0.1, 1.0)
        check_in_range(self.encoder_noise_sigma, "encoder_noise_sigma", 0.0, 0.5)

    @property
    def codec_efficiency(self) -> float:
        """Bitrate multiplier for equal quality relative to H.264."""
        return CODEC_EFFICIENCY[self.codec]


def apply_bitrate_cap(bits: np.ndarray, cap_ratio: float, max_rounds: int = 32) -> np.ndarray:
    """Clip chunks above ``cap_ratio * mean`` and water-fill the excess.

    The excess bits removed from capped chunks are redistributed to the
    uncapped chunks proportionally to their current size, preserving the
    total bit budget (and hence the track's average bitrate) while
    respecting the cap. Iterates because redistribution can push new
    chunks over the cap.

    If every chunk becomes capped (pathological input), the remaining
    excess is dropped rather than looping forever.
    """
    bits = np.asarray(bits, dtype=float).copy()
    if bits.ndim != 1 or bits.size == 0:
        raise ValueError("bits must be a non-empty 1-D array")
    if np.any(bits <= 0):
        raise ValueError("bits must be positive")
    check_in_range(cap_ratio, "cap_ratio", 1.0, 100.0)

    cap = cap_ratio * float(np.mean(bits))
    for _ in range(max_rounds):
        over = bits > cap
        if not np.any(over):
            break
        excess = float(np.sum(bits[over] - cap))
        bits[over] = cap
        under = ~over
        headroom = cap - bits[under]
        total_headroom = float(np.sum(headroom))
        if total_headroom <= 0:
            break
        grant = np.minimum(headroom, excess * headroom / total_headroom)
        bits[under] = bits[under] + grant
    return bits


def encode_track_vbr(
    rng: np.random.Generator,
    timeline: SceneTimeline,
    resolution: int,
    level: int,
    config: EncoderConfig,
    quality_model: QualityModel = DEFAULT_QUALITY_MODEL,
) -> Track:
    """Encode one VBR track following the three-pass recipe.

    Returns a :class:`~repro.video.model.Track` whose per-chunk qualities
    are evaluated on *effective* bits (actual bits divided by the codec
    efficiency), so an H.265 track reaches H.264 quality with fewer bits.
    """
    if resolution not in RESOLUTION_PIXELS:
        raise ValueError(f"unknown resolution {resolution}")
    duration = timeline.chunk_duration_s
    exponent = _resolution_demand_exponent(resolution, quality_model.demand_exponent)
    track_model = replace(quality_model, demand_exponent=exponent)

    # Pass 1 (CRF): ideal constant-quality bits per chunk, including the
    # track-consistent texture factor from the timeline.
    ideal_bits = timeline.texture * np.array(
        [
            track_model.bits_for_latent(resolution, duration, c, config.target_latent)
            for c in timeline.complexity
        ]
    )
    total_bits = float(np.sum(ideal_bits)) * config.codec_efficiency

    # Pass 2–3 (two-pass VBR): allocate the budget with imperfect
    # quality equalization, then cap and water-fill.
    weights = (ideal_bits / np.mean(ideal_bits)) ** config.allocation_efficiency
    bits = total_bits * weights / np.sum(weights)
    bits = apply_bitrate_cap(bits, config.cap_ratio)

    # Residual encoder noise (GOP structure, scene-cut placement, ...);
    # not renormalized, so the realized peak can exceed the nominal cap
    # slightly, as §2 observes.
    if config.encoder_noise_sigma > 0:
        bits = bits * rng.lognormal(0.0, config.encoder_noise_sigma, size=bits.size)

    qualities = _evaluate_qualities(
        quality_model, resolution, bits / config.codec_efficiency, duration, timeline.complexity
    )
    return Track(
        level=level,
        resolution=resolution,
        chunk_sizes_bits=bits,
        chunk_duration_s=duration,
        declared_avg_bitrate_bps=float(np.mean(bits)) / duration,
        qualities=qualities,
    )


def encode_track_cbr(
    rng: np.random.Generator,
    timeline: SceneTimeline,
    resolution: int,
    level: int,
    config: EncoderConfig,
    quality_model: QualityModel = DEFAULT_QUALITY_MODEL,
) -> Track:
    """Encode one CBR track: same bit budget for every chunk.

    The total budget matches what the VBR encode of the same content would
    spend, so CBR-vs-VBR comparisons are at equal average bitrate — the
    setting in which VBR's quality advantage shows (§1).
    """
    duration = timeline.chunk_duration_s
    exponent = _resolution_demand_exponent(resolution, quality_model.demand_exponent)
    track_model = replace(quality_model, demand_exponent=exponent)
    ideal_bits = timeline.texture * np.array(
        [
            track_model.bits_for_latent(resolution, duration, c, config.target_latent)
            for c in timeline.complexity
        ]
    )
    total_bits = float(np.sum(ideal_bits)) * config.codec_efficiency
    bits = np.full(timeline.num_chunks, total_bits / timeline.num_chunks)
    if config.encoder_noise_sigma > 0:
        bits = bits * rng.lognormal(0.0, config.encoder_noise_sigma / 2.0, size=bits.size)

    qualities = _evaluate_qualities(
        quality_model, resolution, bits / config.codec_efficiency, duration, timeline.complexity
    )
    return Track(
        level=level,
        resolution=resolution,
        chunk_sizes_bits=bits,
        chunk_duration_s=duration,
        declared_avg_bitrate_bps=float(np.mean(bits)) / duration,
        qualities=qualities,
    )


def encode_ladder(
    rng: np.random.Generator,
    timeline: SceneTimeline,
    config: EncoderConfig,
    ladder: Sequence[int] = DEFAULT_LADDER,
    quality_model: QualityModel = DEFAULT_QUALITY_MODEL,
    encoding: str = "vbr",
) -> List[Track]:
    """Encode the full track ladder (lowest resolution first)."""
    if encoding not in ("vbr", "cbr"):
        raise ValueError(f"encoding must be 'vbr' or 'cbr', got {encoding!r}")
    encode = encode_track_vbr if encoding == "vbr" else encode_track_cbr
    resolutions = sorted(ladder)
    return [
        encode(rng, timeline, resolution, level, config, quality_model)
        for level, resolution in enumerate(resolutions)
    ]


def _evaluate_qualities(
    quality_model: QualityModel,
    resolution: int,
    effective_bits: np.ndarray,
    duration: float,
    complexity: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Per-chunk quality arrays for all metrics of §3.1.2."""
    metrics: Dict[str, List[float]] = {"vmaf_tv": [], "vmaf_phone": [], "psnr": [], "ssim": []}
    for bits, c in zip(effective_bits, complexity):
        values = quality_model.all_metrics(resolution, float(bits), duration, float(c))
        for name, value in values.items():
            metrics[name].append(value)
    return {name: np.array(values) for name, values in metrics.items()}
