"""Tests for BOLA-E and its three size variants (§6.8)."""

import numpy as np
import pytest

from repro.abr.base import DecisionContext
from repro.abr.bola import BOLA_VARIANTS, BolaEAlgorithm
from repro.network.link import TraceLink
from repro.player.session import run_session


def ctx(index=0, buffer_s=15.0, bandwidth=2e6, last=None):
    return DecisionContext(
        chunk_index=index, now_s=0.0, buffer_s=buffer_s, last_level=last,
        bandwidth_bps=bandwidth, playing=True,
    )


class TestConfig:
    def test_variants(self):
        for variant in BOLA_VARIANTS:
            assert BolaEAlgorithm(variant).name == f"BOLA-E ({variant})"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            BolaEAlgorithm("median")

    def test_target_must_exceed_minimum(self):
        with pytest.raises(ValueError):
            BolaEAlgorithm("seg", minimum_buffer_s=30.0, buffer_target_s=20.0)


class TestScores:
    def test_low_buffer_low_level(self, ed_ffmpeg_video):
        algorithm = BolaEAlgorithm("avg")
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.select_level(ctx(buffer_s=2.0)) == 0

    def test_level_monotone_in_buffer(self, ed_ffmpeg_video):
        algorithm = BolaEAlgorithm("avg")
        algorithm.prepare(ed_ffmpeg_video.manifest())
        levels = [
            algorithm.select_level(ctx(buffer_s=b, bandwidth=50e6, last=5))
            for b in (2.0, 8.0, 15.0, 25.0)
        ]
        assert levels == sorted(levels)

    def test_upswitch_capped_by_throughput(self, ed_ffmpeg_video):
        """The BOLA-E safeguard: a buffer-driven upswitch cannot exceed
        the throughput-sustainable level."""
        algorithm = BolaEAlgorithm("avg")
        manifest = ed_ffmpeg_video.manifest()
        algorithm.prepare(manifest)
        # High buffer wants a high level, but bandwidth only sustains ~L2.
        bandwidth = manifest.declared_avg_bitrates_bps[2] * 1.1
        level = algorithm.select_level(ctx(buffer_s=28.0, bandwidth=bandwidth, last=1))
        assert level <= 2

    def test_pause_requested_on_full_buffer(self, ed_ffmpeg_video):
        algorithm = BolaEAlgorithm("avg", buffer_target_s=30.0)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        idle = algorithm.requested_idle_s(ctx(buffer_s=90.0))
        assert idle > 0.0

    def test_no_pause_on_low_buffer(self, ed_ffmpeg_video):
        algorithm = BolaEAlgorithm("avg")
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.requested_idle_s(ctx(buffer_s=5.0)) == 0.0


class TestVariantOrdering:
    """§6.8: peak is most conservative, avg most aggressive, seg between;
    seg switches more because per-chunk sizes swing its scores."""

    @pytest.fixture(scope="class")
    def sessions(self, ed_youtube_video, lte_traces):
        results = {}
        for variant in BOLA_VARIANTS:
            runs = []
            for trace in lte_traces[:8]:
                algorithm = BolaEAlgorithm(variant)
                runs.append(run_session(algorithm, ed_youtube_video, TraceLink(trace)))
            results[variant] = runs
        return results

    def test_peak_most_conservative(self, sessions):
        mean_level = {
            v: float(np.mean([r.levels.mean() for r in runs]))
            for v, runs in sessions.items()
        }
        assert mean_level["peak"] <= mean_level["seg"] + 0.1
        assert mean_level["peak"] <= mean_level["avg"] + 0.1

    def test_data_usage_ordering(self, sessions):
        usage = {
            v: float(np.mean([r.data_usage_bits for r in runs]))
            for v, runs in sessions.items()
        }
        assert usage["peak"] < usage["avg"]

    def test_seg_switches_most(self, sessions):
        switches = {
            v: float(np.mean([np.count_nonzero(np.diff(r.levels)) for r in runs]))
            for v, runs in sessions.items()
        }
        assert switches["seg"] >= switches["peak"]
