"""Tests for the DYNAMIC hybrid rule and the Oboe-style auto-tuned CAVA."""

import numpy as np
import pytest

from repro.abr.base import DecisionContext
from repro.abr.dynamic import DynamicAlgorithm
from repro.abr.oboe import DEFAULT_STATE_CONFIGS, NetworkState, OboeTunedCava
from repro.network.link import TraceLink
from repro.player.session import run_session


def ctx(index=0, buffer_s=15.0, bandwidth=2e6, last=None):
    return DecisionContext(
        chunk_index=index, now_s=0.0, buffer_s=buffer_s, last_level=last,
        bandwidth_bps=bandwidth, playing=True,
    )


class TestDynamic:
    def test_throughput_mode_on_shallow_buffer(self, ed_ffmpeg_video):
        algorithm = DynamicAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        algorithm.select_level(ctx(buffer_s=5.0, bandwidth=2e6))
        assert not algorithm.using_bola

    def test_bola_mode_on_deep_buffer(self, ed_ffmpeg_video):
        algorithm = DynamicAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        algorithm.select_level(ctx(buffer_s=25.0))
        assert algorithm.using_bola

    def test_hysteresis(self, ed_ffmpeg_video):
        """Between the watermarks, the active mode persists."""
        algorithm = DynamicAlgorithm(low_watermark_s=10.0, high_watermark_s=20.0)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        algorithm.select_level(ctx(buffer_s=25.0))
        assert algorithm.using_bola
        algorithm.select_level(ctx(buffer_s=15.0))  # in the dead band
        assert algorithm.using_bola
        algorithm.select_level(ctx(buffer_s=9.0))
        assert not algorithm.using_bola

    def test_throughput_level_respects_safety(self, ed_ffmpeg_video):
        algorithm = DynamicAlgorithm(throughput_safety=0.9)
        manifest = ed_ffmpeg_video.manifest()
        algorithm.prepare(manifest)
        level = algorithm.select_level(ctx(buffer_s=5.0, bandwidth=2e6))
        assert manifest.declared_avg_bitrates_bps[level] <= 0.9 * 2e6

    def test_full_session(self, short_video, one_lte_trace):
        result = run_session(DynamicAlgorithm(), short_video, TraceLink(one_lte_trace))
        assert result.num_chunks == short_video.num_chunks

    def test_invalid_watermarks(self):
        with pytest.raises(ValueError, match="watermark"):
            DynamicAlgorithm(low_watermark_s=20.0, high_watermark_s=10.0)


class TestNetworkState:
    def test_contains(self):
        state = NetworkState("x", 1e6, 2e6, 0.0, 0.5)
        assert state.contains(1.5e6, 0.2)
        assert not state.contains(2.5e6, 0.2)
        assert not state.contains(1.5e6, 0.7)


class TestOboeTunedCava:
    def test_starts_conservative(self, ed_ffmpeg_video):
        algorithm = OboeTunedCava()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.active_state == "high-choppy"

    def test_classifies_stable_high(self, ed_ffmpeg_video):
        algorithm = OboeTunedCava(sample_window=6)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        for i in range(6):
            algorithm.notify_download(i, 3, 4e6, 1.0, 20.0, float(i + 1))
        algorithm.select_level(ctx(index=6, buffer_s=30.0, bandwidth=4e6, last=3))
        assert algorithm.active_state == "high-stable"

    def test_classifies_low_choppy(self, ed_ffmpeg_video):
        algorithm = OboeTunedCava(sample_window=6)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        rates = [1e6, 0.2e6, 1.4e6, 0.3e6, 1.2e6, 0.25e6]
        for i, rate in enumerate(rates):
            algorithm.notify_download(i, 1, rate * 2.0, 2.0, 10.0, float(i + 1))
        algorithm.select_level(ctx(index=6, buffer_s=10.0, bandwidth=1e6, last=1))
        assert algorithm.active_state == "low-choppy"

    def test_state_switches_counted(self, ed_ffmpeg_video, one_lte_trace):
        algorithm = OboeTunedCava()
        result = run_session(algorithm, ed_ffmpeg_video, TraceLink(one_lte_trace))
        assert result.num_chunks == ed_ffmpeg_video.num_chunks
        assert algorithm.state_switches >= 0  # ran to completion

    def test_quality_competitive_with_plain_cava(
        self, ed_ffmpeg_video, ed_classifier, lte_traces
    ):
        """Auto-tuning must not break the controller: QoE stays near
        plain CAVA's across a small trace set."""
        from repro.core.cava import cava_p123
        from repro.player.metrics import summarize_session

        plain, tuned = [], []
        for trace in lte_traces[:5]:
            link = TraceLink(trace)
            a = run_session(cava_p123(), ed_ffmpeg_video, link)
            b = run_session(OboeTunedCava(), ed_ffmpeg_video, link)
            plain.append(
                summarize_session(a, ed_ffmpeg_video, "vmaf_phone", ed_classifier).q4_quality_mean
            )
            tuned.append(
                summarize_session(b, ed_ffmpeg_video, "vmaf_phone", ed_classifier).q4_quality_mean
            )
        assert np.mean(tuned) > np.mean(plain) - 4.0

    def test_unknown_state_config_rejected(self):
        with pytest.raises(ValueError, match="unknown states"):
            OboeTunedCava(state_configs={"warp-speed": {}})

    def test_default_table_covers_all_states(self):
        algorithm = OboeTunedCava()
        labels = {s.label for s in algorithm.states}
        assert set(DEFAULT_STATE_CONFIGS) == labels
