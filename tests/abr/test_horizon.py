"""Tests for repro.abr.horizon: the vectorized lookahead machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.horizon import horizon_sizes, level_sequences, simulate_buffer


class TestLevelSequences:
    def test_exhaustive_count(self):
        sequences = level_sequences(6, 5)
        assert sequences.shape == (6**5, 5)
        # All sequences distinct.
        assert len({tuple(row) for row in sequences}) == 6**5

    def test_small_case_exact(self):
        sequences = level_sequences(2, 2)
        assert sorted(map(tuple, sequences)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_cache_returns_same_object(self):
        assert level_sequences(6, 5) is level_sequences(6, 5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            level_sequences(0, 5)


class TestHorizonSizes:
    def test_full_window(self, ed_ffmpeg_video):
        manifest = ed_ffmpeg_video.manifest()
        sizes = horizon_sizes(manifest, 10, 5)
        assert sizes.shape == (6, 5)
        assert sizes[2, 0] == manifest.chunk_size_bits(2, 10)

    def test_truncated_at_end(self, ed_ffmpeg_video):
        manifest = ed_ffmpeg_video.manifest()
        sizes = horizon_sizes(manifest, manifest.num_chunks - 2, 5)
        assert sizes.shape == (6, 2)

    def test_out_of_range_rejected(self, ed_ffmpeg_video):
        with pytest.raises(IndexError):
            horizon_sizes(ed_ffmpeg_video.manifest(), 10_000, 5)


class TestSimulateBuffer:
    def test_no_rebuffer_with_big_buffer(self):
        sequences = level_sequences(2, 3)
        sizes = np.array([[1e6] * 3, [2e6] * 3])
        rebuffer, final = simulate_buffer(sequences, sizes, 1e6, 60.0, 2.0)
        assert np.all(rebuffer == 0.0)

    def test_rebuffer_from_empty_buffer(self):
        sequences = np.array([[1, 1]])
        sizes = np.array([[1e6, 1e6], [4e6, 4e6]])
        # 4 s per chunk at 1 Mbps; buffer starts empty, each chunk adds 2 s.
        rebuffer, final = simulate_buffer(sequences, sizes, 1e6, 0.0, 2.0)
        assert rebuffer[0] == pytest.approx(4.0 + 2.0)
        assert final[0] == pytest.approx(2.0)

    def test_exact_arithmetic_single_step(self):
        sequences = np.array([[0], [1]])
        sizes = np.array([[2e6], [8e6]])
        rebuffer, final = simulate_buffer(sequences, sizes, 2e6, 3.0, 2.0)
        # Level 0: 1 s download, buffer 3-1+2 = 4; level 1: 4 s download,
        # stall 1 s, buffer 0+2 = 2.
        assert rebuffer.tolist() == pytest.approx([0.0, 1.0])
        assert final.tolist() == pytest.approx([4.0, 2.0])

    def test_higher_levels_never_rebuffer_less(self):
        """Monotonicity: downloading strictly more bits cannot stall less."""
        sequences = level_sequences(3, 4)
        sizes = np.array([[1e6] * 4, [2e6] * 4, [4e6] * 4])
        rebuffer, _ = simulate_buffer(sequences, sizes, 1.5e6, 4.0, 2.0)
        totals = sequences.sum(axis=1)
        # Compare the all-low and all-high plans.
        low = rebuffer[np.argmin(totals)]
        high = rebuffer[np.argmax(totals)]
        assert high >= low

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="plan"):
            simulate_buffer(level_sequences(2, 3), np.ones((2, 2)), 1e6, 0.0, 2.0)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            simulate_buffer(level_sequences(2, 2), np.ones((2, 2)), 0.0, 0.0, 2.0)

    @given(
        buffer0=st.floats(min_value=0.0, max_value=60.0),
        bandwidth=st.floats(min_value=1e5, max_value=1e7),
    )
    @settings(max_examples=40)
    def test_property_rebuffer_nonnegative_and_final_positive(self, buffer0, bandwidth):
        sequences = level_sequences(3, 3)
        sizes = np.array([[1e6] * 3, [3e6] * 3, [9e6] * 3])
        rebuffer, final = simulate_buffer(sequences, sizes, bandwidth, buffer0, 2.0)
        assert np.all(rebuffer >= 0.0)
        assert np.all(final >= 2.0 - 1e-9)  # last chunk always enqueued
