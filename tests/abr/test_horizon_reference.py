"""Equivalence of the vectorized buffer rollout against a plain-Python
reference implementation (the definition, executed naively)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.horizon import level_sequences, simulate_buffer


def reference_rollout(sequence, sizes_bits, bandwidth, buffer0, delta):
    """The textbook per-plan loop simulate_buffer vectorizes."""
    buffer = float(buffer0)
    rebuffer = 0.0
    for k, level in enumerate(sequence):
        download = sizes_bits[level][k] / bandwidth
        if download > buffer:
            rebuffer += download - buffer
            buffer = 0.0
        else:
            buffer -= download
        buffer += delta
    return rebuffer, buffer


@given(
    num_levels=st.integers(min_value=1, max_value=4),
    horizon=st.integers(min_value=1, max_value=4),
    bandwidth=st.floats(min_value=1e5, max_value=2e7),
    buffer0=st.floats(min_value=0.0, max_value=80.0),
    delta=st.sampled_from([2.0, 5.0]),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_property_vectorized_matches_reference(
    num_levels, horizon, bandwidth, buffer0, delta, seed
):
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(1e5, 2e7, size=(num_levels, horizon))
    sequences = level_sequences(num_levels, horizon)
    rebuffer, final = simulate_buffer(sequences, sizes, bandwidth, buffer0, delta)
    # Check a sample of plans exactly against the reference.
    for index in range(0, sequences.shape[0], max(1, sequences.shape[0] // 7)):
        ref_rebuffer, ref_final = reference_rollout(
            sequences[index], sizes, bandwidth, buffer0, delta
        )
        assert rebuffer[index] == pytest.approx(ref_rebuffer, rel=1e-9, abs=1e-9)
        assert final[index] == pytest.approx(ref_final, rel=1e-9, abs=1e-9)
