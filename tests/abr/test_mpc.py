"""Tests for MPC and RobustMPC."""

import numpy as np
import pytest

from repro.abr.base import DecisionContext
from repro.abr.mpc import MPCAlgorithm, RobustMPCAlgorithm
from repro.network.link import TraceLink
from repro.player.session import run_session


def ctx(index=0, buffer_s=20.0, bandwidth=2e6, last=None):
    return DecisionContext(
        chunk_index=index, now_s=0.0, buffer_s=buffer_s, last_level=last,
        bandwidth_bps=bandwidth, playing=True,
    )


class TestMPC:
    def test_generous_bandwidth_tops_out(self, ed_ffmpeg_video):
        algorithm = MPCAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.select_level(ctx(bandwidth=100e6, buffer_s=40.0)) == 5

    def test_starved_bandwidth_bottoms_out(self, ed_ffmpeg_video):
        algorithm = MPCAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.select_level(ctx(bandwidth=5e4, buffer_s=4.0)) == 0

    def test_smoothness_weight_reduces_switching(self, ed_ffmpeg_video, one_lte_trace):
        smooth = MPCAlgorithm(smoothness_weight=20.0)
        jumpy = MPCAlgorithm(smoothness_weight=0.0)
        r_smooth = run_session(smooth, ed_ffmpeg_video, TraceLink(one_lte_trace))
        r_jumpy = run_session(jumpy, ed_ffmpeg_video, TraceLink(one_lte_trace))
        switches = lambda r: int(np.count_nonzero(np.diff(r.levels)))
        assert switches(r_smooth) <= switches(r_jumpy)

    def test_end_of_video_truncated_horizon(self, ed_ffmpeg_video):
        algorithm = MPCAlgorithm(horizon=5)
        manifest = ed_ffmpeg_video.manifest()
        algorithm.prepare(manifest)
        # Must not raise on the last chunk.
        level = algorithm.select_level(ctx(index=manifest.num_chunks - 1, bandwidth=2e6))
        assert 0 <= level < 6

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            MPCAlgorithm(horizon=0)


class TestRobustMPC:
    def test_discount_grows_with_errors(self, ed_ffmpeg_video):
        algorithm = RobustMPCAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        # Feed a large prediction error: predicted 10 Mbps, actual 1 Mbps.
        algorithm._predicted_bandwidth(ctx(bandwidth=10e6))
        algorithm.notify_download(0, 3, size_bits=1e6, download_s=1.0, buffer_s=10.0, now_s=2.0)
        discounted = algorithm._predicted_bandwidth(ctx(bandwidth=10e6))
        assert discounted < 10e6 / 5  # error was 9x

    def test_no_errors_no_discount(self, ed_ffmpeg_video):
        algorithm = RobustMPCAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm._predicted_bandwidth(ctx(bandwidth=4e6)) == pytest.approx(4e6)

    def test_more_conservative_than_mpc(self, ed_ffmpeg_video, lte_traces):
        """§6.3: MPC can have significantly more rebuffering than
        RobustMPC under volatile bandwidth."""
        mpc_stall = 0.0
        robust_stall = 0.0
        for trace in lte_traces[:8]:
            link = TraceLink(trace)
            mpc_stall += run_session(MPCAlgorithm(), ed_ffmpeg_video, link).total_stall_s
            robust_stall += run_session(
                RobustMPCAlgorithm(), ed_ffmpeg_video, link
            ).total_stall_s
        assert robust_stall <= mpc_stall

    def test_prepare_resets_errors(self, ed_ffmpeg_video):
        algorithm = RobustMPCAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        algorithm._predicted_bandwidth(ctx(bandwidth=10e6))
        algorithm.notify_download(0, 3, 1e6, 1.0, 10.0, 2.0)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm._predicted_bandwidth(ctx(bandwidth=10e6)) == pytest.approx(10e6)
