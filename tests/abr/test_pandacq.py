"""Tests for PANDA/CQ (max-sum and max-min)."""

import numpy as np
import pytest

from repro.abr.base import DecisionContext
from repro.abr.pandacq import PandaCQAlgorithm
from repro.network.link import TraceLink
from repro.player.session import run_session


def ctx(index=0, buffer_s=30.0, bandwidth=2e6, last=None):
    return DecisionContext(
        chunk_index=index, now_s=0.0, buffer_s=buffer_s, last_level=last,
        bandwidth_bps=bandwidth, playing=True,
    )


class TestSetup:
    def test_requires_quality_manifest(self, ed_ffmpeg_video):
        algorithm = PandaCQAlgorithm("max-min")
        with pytest.raises(ValueError, match="quality"):
            algorithm.prepare(ed_ffmpeg_video.manifest())

    def test_unknown_metric_rejected(self, ed_ffmpeg_video):
        algorithm = PandaCQAlgorithm("max-min", metric="mos")
        with pytest.raises(KeyError, match="mos"):
            algorithm.prepare(ed_ffmpeg_video.manifest(include_quality=True))

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            PandaCQAlgorithm("max-avg")

    def test_names(self):
        assert PandaCQAlgorithm("max-sum").name == "PANDA/CQ max-sum"
        assert PandaCQAlgorithm("max-min").name == "PANDA/CQ max-min"


class TestDecisions:
    def test_generous_bandwidth_high_quality(self, ed_ffmpeg_video):
        algorithm = PandaCQAlgorithm("max-min")
        algorithm.prepare(ed_ffmpeg_video.manifest(include_quality=True))
        assert algorithm.select_level(ctx(bandwidth=100e6, buffer_s=60.0)) >= 4

    def test_starved_bandwidth_low_level(self, ed_ffmpeg_video):
        algorithm = PandaCQAlgorithm("max-min")
        algorithm.prepare(ed_ffmpeg_video.manifest(include_quality=True))
        assert algorithm.select_level(ctx(bandwidth=5e4, buffer_s=3.0)) == 0

    def test_max_min_protects_q4_better_than_max_sum(
        self, ed_ffmpeg_video, ed_classifier, lte_traces
    ):
        """§6.3: max-sum can have significantly lower Q4 quality than
        max-min."""
        from repro.player.metrics import quality_series

        q4 = ed_classifier.categories == 4
        q4_quality = {"max-sum": [], "max-min": []}
        for trace in lte_traces[:6]:
            for objective in ("max-sum", "max-min"):
                algorithm = PandaCQAlgorithm(objective)
                result = run_session(
                    algorithm, ed_ffmpeg_video, TraceLink(trace), include_quality=True
                )
                series = quality_series(result, ed_ffmpeg_video, "vmaf_phone")
                q4_quality[objective].append(float(np.mean(series[q4])))
        assert np.mean(q4_quality["max-min"]) >= np.mean(q4_quality["max-sum"]) - 0.5

    def test_end_of_video(self, ed_ffmpeg_video):
        algorithm = PandaCQAlgorithm("max-sum")
        manifest = ed_ffmpeg_video.manifest(include_quality=True)
        algorithm.prepare(manifest)
        level = algorithm.select_level(ctx(index=manifest.num_chunks - 1))
        assert 0 <= level < 6
