"""Tests for the extra baselines: PIA (CBR-era PID) and FESTIVE."""

import numpy as np
import pytest

from repro.abr.base import DecisionContext
from repro.abr.festive import FestiveAlgorithm
from repro.abr.pia import PIAAlgorithm
from repro.network.link import TraceLink
from repro.player.metrics import summarize_session
from repro.player.session import run_session


def ctx(index=0, now=0.0, buffer_s=20.0, bandwidth=2e6, last=None):
    return DecisionContext(
        chunk_index=index, now_s=now, buffer_s=buffer_s, last_level=last,
        bandwidth_bps=bandwidth, playing=True,
    )


class TestPIA:
    def test_generous_bandwidth_high_level(self, ed_ffmpeg_video):
        algorithm = PIAAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.select_level(ctx(bandwidth=60e6, buffer_s=60.0)) == 5

    def test_low_buffer_conservative(self, ed_ffmpeg_video):
        algorithm = PIAAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        low = algorithm.select_level(ctx(buffer_s=3.0, bandwidth=2e6))
        algorithm.prepare(ed_ffmpeg_video.manifest())
        high = algorithm.select_level(ctx(buffer_s=80.0, bandwidth=2e6))
        assert low <= high

    def test_ignores_per_chunk_sizes(self, ed_ffmpeg_video, ed_classifier):
        """PIA's defining CBR assumption: the decision is identical for a
        small Q1 chunk and a large Q4 chunk under the same state."""
        algorithm = PIAAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        q1 = int(np.flatnonzero(ed_classifier.categories == 1)[0])
        q4 = int(ed_classifier.complex_positions()[0])
        a = algorithm.select_level(ctx(index=q1, now=1.0, buffer_s=40.0))
        algorithm.prepare(ed_ffmpeg_video.manifest())
        b = algorithm.select_level(ctx(index=q4, now=1.0, buffer_s=40.0))
        assert a == b

    def test_cava_beats_pia_on_q4(self, ed_ffmpeg_video, ed_classifier, lte_traces):
        """The §5 design argument as an ablation: VBR-aware CAVA delivers
        higher Q4 quality than its CBR-era predecessor."""
        from repro.core.cava import cava_p123

        cava_q4, pia_q4 = [], []
        for trace in lte_traces[:6]:
            link = TraceLink(trace)
            cava = summarize_session(
                run_session(cava_p123(), ed_ffmpeg_video, link),
                ed_ffmpeg_video, "vmaf_phone", ed_classifier,
            )
            pia = summarize_session(
                run_session(PIAAlgorithm(), ed_ffmpeg_video, link),
                ed_ffmpeg_video, "vmaf_phone", ed_classifier,
            )
            cava_q4.append(cava.q4_quality_mean)
            pia_q4.append(pia.q4_quality_mean)
        assert np.mean(cava_q4) > np.mean(pia_q4)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PIAAlgorithm(target_buffer_s=0.0)


class TestFESTIVE:
    def test_cold_start_goes_to_target(self, ed_ffmpeg_video):
        algorithm = FestiveAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        level = algorithm.select_level(ctx(bandwidth=10e6))
        # 0.85 * 10 Mbps affords the top track (~5 Mbps average).
        assert level == 5

    def test_gradual_upswitch_requires_patience(self, ed_ffmpeg_video):
        algorithm = FestiveAlgorithm(patience=3)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        levels = [
            algorithm.select_level(ctx(index=i, buffer_s=30.0, bandwidth=10e6, last=1))
            for i in range(3)
        ]
        # The first two decisions hold at 1; the third steps to 2.
        assert levels == [1, 1, 2]

    def test_one_level_per_downswitch(self, ed_ffmpeg_video):
        algorithm = FestiveAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        level = algorithm.select_level(ctx(buffer_s=30.0, bandwidth=3e5, last=5))
        assert level == 4

    def test_panic_drop_near_empty_buffer(self, ed_ffmpeg_video):
        algorithm = FestiveAlgorithm(panic_buffer_s=6.0)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        level = algorithm.select_level(ctx(buffer_s=2.0, bandwidth=3e5, last=5))
        assert level <= 1

    def test_runs_full_session(self, short_video, one_lte_trace):
        result = run_session(FestiveAlgorithm(), short_video, TraceLink(one_lte_trace))
        assert result.num_chunks == short_video.num_chunks
        # Gradual switching: no jump larger than the cold-start one.
        jumps = np.abs(np.diff(result.levels))
        assert jumps.max() <= 4  # panic drops can skip levels

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FestiveAlgorithm(patience=0)
        with pytest.raises(ValueError):
            FestiveAlgorithm(efficiency=1.5)


class TestRegistryIntegration:
    def test_new_schemes_registered(self):
        from repro.abr.registry import make_scheme

        assert make_scheme("PIA").name == "PIA"
        assert make_scheme("FESTIVE").name == "FESTIVE"
