"""Tests for the myopic baselines RBA and BBA-1 (§4)."""

import numpy as np
import pytest

from repro.abr.base import DecisionContext
from repro.abr.bba import BBA1Algorithm
from repro.abr.rba import RateBasedAlgorithm
from repro.network.link import TraceLink
from repro.player.session import run_session


def ctx(index=0, buffer_s=20.0, bandwidth=2e6, last=None):
    return DecisionContext(
        chunk_index=index, now_s=0.0, buffer_s=buffer_s, last_level=last,
        bandwidth_bps=bandwidth, playing=True,
    )


class TestRBA:
    def test_high_bandwidth_high_level(self, ed_ffmpeg_video):
        algorithm = RateBasedAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.select_level(ctx(bandwidth=100e6, buffer_s=30.0)) == 5

    def test_low_bandwidth_low_level(self, ed_ffmpeg_video):
        algorithm = RateBasedAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.select_level(ctx(bandwidth=1e5, buffer_s=9.0)) == 0

    def test_reserve_rule(self, ed_ffmpeg_video):
        """The chosen level leaves >= 4 chunks of buffer after download."""
        algorithm = RateBasedAlgorithm(min_buffer_chunks=4.0)
        manifest = ed_ffmpeg_video.manifest()
        algorithm.prepare(manifest)
        context = ctx(index=5, buffer_s=15.0, bandwidth=2e6)
        level = algorithm.select_level(context)
        if level > 0:
            download = manifest.chunk_size_bits(level, 5) / 2e6
            assert context.buffer_s - download >= 4 * manifest.chunk_duration_s - 1e-9

    def test_myopic_antipattern(self, ed_ffmpeg_video, ed_classifier):
        """§4's point: RBA picks lower levels for Q4 (large) chunks than
        for Q1 (small) chunks under tight bandwidth."""
        algorithm = RateBasedAlgorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        q4_levels, q1_levels = [], []
        for index in range(ed_ffmpeg_video.num_chunks):
            level = algorithm.select_level(ctx(index=index, buffer_s=12.0, bandwidth=1.5e6))
            if ed_classifier.category(index) == 4:
                q4_levels.append(level)
            elif ed_classifier.category(index) == 1:
                q1_levels.append(level)
        assert np.mean(q4_levels) < np.mean(q1_levels)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RateBasedAlgorithm(min_buffer_chunks=-1)


class TestBBA1:
    def test_reservoir_forces_lowest(self, ed_ffmpeg_video):
        algorithm = BBA1Algorithm(reservoir_s=10.0, cushion_s=80.0)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.select_level(ctx(buffer_s=5.0)) == 0

    def test_cushion_allows_highest(self, ed_ffmpeg_video):
        algorithm = BBA1Algorithm(reservoir_s=10.0, cushion_s=80.0)
        algorithm.prepare(ed_ffmpeg_video.manifest())
        # At the cushion the allowed size is the top track's average; an
        # average-or-smaller top-track chunk fits.
        manifest = ed_ffmpeg_video.manifest()
        sizes = manifest.chunk_sizes_bits[5]
        small_chunk = int(np.argmin(sizes))
        assert algorithm.select_level(ctx(index=small_chunk, buffer_s=90.0)) == 5

    def test_chunk_map_monotone_in_buffer(self, ed_ffmpeg_video):
        algorithm = BBA1Algorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        levels = [
            algorithm.select_level(ctx(index=7, buffer_s=b)) for b in (5, 20, 40, 60, 85)
        ]
        assert levels == sorted(levels)

    def test_myopic_antipattern(self, ed_ffmpeg_video, ed_classifier):
        """BBA-1 under a mid buffer: large Q4 chunks get lower levels."""
        algorithm = BBA1Algorithm()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        q4_levels, q1_levels = [], []
        for index in range(ed_ffmpeg_video.num_chunks):
            level = algorithm.select_level(ctx(index=index, buffer_s=45.0))
            if ed_classifier.category(index) == 4:
                q4_levels.append(level)
            elif ed_classifier.category(index) == 1:
                q1_levels.append(level)
        assert np.mean(q4_levels) < np.mean(q1_levels)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError, match="cushion"):
            BBA1Algorithm(reservoir_s=50.0, cushion_s=40.0)


class TestMyopicEndToEnd:
    def test_both_run_clean_sessions(self, short_video, one_lte_trace):
        for algorithm in (RateBasedAlgorithm(), BBA1Algorithm()):
            result = run_session(algorithm, short_video, TraceLink(one_lte_trace))
            assert result.num_chunks == short_video.num_chunks
