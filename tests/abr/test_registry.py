"""Tests for the scheme registry."""

import pytest

from repro.abr.registry import (
    make_scheme,
    needs_quality_manifest,
    scheme_names,
)


def test_all_paper_schemes_present():
    names = set(scheme_names())
    expected = {
        "CAVA", "CAVA-p1", "CAVA-p12",
        "MPC", "RobustMPC",
        "PANDA/CQ max-sum", "PANDA/CQ max-min",
        "BOLA-E (peak)", "BOLA-E (avg)", "BOLA-E (seg)",
        "BBA-1", "RBA",
    }
    assert expected <= names


def test_make_scheme_names_match():
    for name in scheme_names():
        algorithm = make_scheme(name)
        assert algorithm.name == name, f"{name} factory produced {algorithm.name}"


def test_unknown_scheme_rejected():
    with pytest.raises(KeyError, match="unknown scheme"):
        make_scheme("Pensieve")


def test_quality_requirement_flags():
    assert needs_quality_manifest("PANDA/CQ max-min")
    assert needs_quality_manifest("PANDA/CQ max-sum")
    assert not needs_quality_manifest("CAVA")
    assert not needs_quality_manifest("RobustMPC")


def test_panda_metric_propagates():
    algorithm = make_scheme("PANDA/CQ max-min", metric="vmaf_tv")
    assert algorithm.metric == "vmaf_tv"


def test_factories_produce_fresh_instances():
    a = make_scheme("CAVA")
    b = make_scheme("CAVA")
    assert a is not b
