"""Bit-identity of the shared-prefix (trellis) planner.

The trellis rollout in :class:`~repro.abr.horizon.HorizonPlanner` is the
per-decision hot path of MPC and PANDA/CQ. These tests assert *exact*
float equality against the flat per-sequence formulations it replaced —
no tolerances — plus the read-only guarantee on the shared sequence
table, and decision-level equivalence of the rewired schemes against
straight re-implementations of their original select logic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.horizon import (
    HorizonPlanner,
    level_sequences,
    planner_for,
    simulate_buffer,
)
from repro.abr.base import DecisionContext
from repro.abr.mpc import MPCAlgorithm
from repro.abr.pandacq import PandaCQAlgorithm
from repro.video.dataset import build_video, standard_dataset_specs


def _bench_video():
    spec = next(s for s in standard_dataset_specs() if s.name == "ED-youtube-h264")
    return build_video(spec, seed=0)


class TestLevelSequencesReadOnly:
    def test_cached_table_rejects_mutation(self):
        table = level_sequences(4, 3)
        with pytest.raises((ValueError, RuntimeError)):
            table[0, 0] = 99

    def test_cached_table_is_shared_and_unchanged(self):
        first = level_sequences(3, 2)
        again = level_sequences(3, 2)
        assert again is first
        expected = np.stack(
            [g.ravel() for g in np.meshgrid(np.arange(3), np.arange(3), indexing="ij")],
            axis=1,
        )
        assert np.array_equal(first, expected)


class TestTrellisBitIdentity:
    @given(
        num_levels=st.integers(min_value=1, max_value=5),
        horizon=st.integers(min_value=1, max_value=4),
        bandwidth=st.floats(min_value=1e4, max_value=5e7),
        buffer0=st.floats(min_value=0.0, max_value=100.0),
        delta=st.sampled_from([2.0, 4.0, 5.0]),
        seed=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=80, deadline=None)
    def test_rebuffer_matches_simulate_buffer_exactly(
        self, num_levels, horizon, bandwidth, buffer0, delta, seed
    ):
        rng = np.random.default_rng(seed)
        sizes = rng.uniform(1e4, 4e7, size=(num_levels, horizon))
        sequences = level_sequences(num_levels, horizon)
        expected, _ = simulate_buffer(sequences, sizes, bandwidth, buffer0, delta)
        planner = HorizonPlanner(num_levels, horizon)
        actual = planner.rollout_rebuffer(sizes, bandwidth, buffer0, delta)
        # Exact equality: the trellis must be bit-identical, not close.
        assert actual.tolist() == expected.tolist()

    def test_truncated_horizon_uses_prefix_of_buffers(self):
        rng = np.random.default_rng(7)
        planner = HorizonPlanner(4, 5)
        for h in range(1, 6):
            sizes = rng.uniform(1e5, 1e7, size=(4, h))
            sequences = level_sequences(4, h)
            expected, _ = simulate_buffer(sequences, sizes, 2e6, 12.0, 5.0)
            actual = planner.rollout_rebuffer(sizes, 2e6, 12.0, 5.0)
            assert actual.tolist() == expected.tolist()

    @given(
        mode=st.sampled_from(["sum", "min"]),
        horizon=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_value_accumulation_matches_gather_reduce(self, mode, horizon, seed):
        rng = np.random.default_rng(seed)
        num_levels = 4
        sizes = rng.uniform(1e5, 1e7, size=(num_levels, horizon))
        values = rng.uniform(0.0, 100.0, size=(num_levels, horizon))
        sequences = level_sequences(num_levels, horizon)
        plan_values = values[sequences, np.arange(horizon)]
        expected = (
            plan_values.sum(axis=1) if mode == "sum" else plan_values.min(axis=1)
        )
        planner = HorizonPlanner(num_levels, horizon)
        _, actual = planner.rollout_with_values(sizes, values, mode, 2e6, 10.0, 5.0)
        assert actual.tolist() == expected.tolist()

    def test_rejects_bad_inputs(self):
        planner = HorizonPlanner(3, 2)
        sizes = np.ones((3, 2))
        with pytest.raises(ValueError):
            planner.rollout_rebuffer(sizes, 0.0, 5.0, 5.0)
        with pytest.raises(ValueError):
            planner.rollout_rebuffer(np.ones((2, 2)), 1e6, 5.0, 5.0)
        with pytest.raises(ValueError):
            planner.rollout_rebuffer(np.ones((3, 3)), 1e6, 5.0, 5.0)
        with pytest.raises(ValueError):
            planner.rollout_with_values(sizes, np.ones((3, 1)), "sum", 1e6, 5.0, 5.0)
        with pytest.raises(ValueError):
            planner.rollout_with_values(sizes, np.ones((3, 2)), "max", 1e6, 5.0, 5.0)

    def test_planner_for_shares_instances(self):
        assert planner_for(6, 5) is planner_for(6, 5)
        assert planner_for(6, 5) is not planner_for(6, 4)


def _reference_mpc_select(algorithm, ctx):
    """The original flat per-sequence MPC selection, re-implemented."""
    from repro.abr.horizon import horizon_sizes

    manifest = algorithm.manifest
    sizes = horizon_sizes(manifest, ctx.chunk_index, algorithm.horizon)
    h = sizes.shape[1]
    sequences = level_sequences(manifest.num_tracks, h)
    utilities = manifest.declared_avg_bitrates_bps / 1e6
    bandwidth = max(ctx.bandwidth_bps, 1_000.0)
    rebuffer, _ = simulate_buffer(
        sequences, sizes, bandwidth, ctx.buffer_s, manifest.chunk_duration_s
    )
    utility = utilities[sequences].sum(axis=1)
    previous = ctx.last_level if ctx.last_level is not None else sequences[:, 0]
    smooth = np.abs(utilities[sequences[:, 0]] - utilities[previous])
    steps = (
        np.abs(np.diff(utilities[sequences], axis=1)).sum(axis=1) if h > 1 else 0.0
    )
    score = (
        utility
        - algorithm.smoothness_weight * (smooth + steps)
        - algorithm.rebuffer_penalty_per_s * rebuffer
    )
    return int(sequences[int(np.argmax(score)), 0])


def _reference_panda_select(algorithm, ctx):
    """The original flat per-sequence PANDA/CQ selection, re-implemented."""
    from repro.abr.horizon import horizon_sizes

    manifest = algorithm.manifest
    i = ctx.chunk_index
    sizes = horizon_sizes(manifest, i, algorithm.horizon)
    h = sizes.shape[1]
    sequences = level_sequences(manifest.num_tracks, h)
    bandwidth = max(ctx.bandwidth_bps, 1_000.0)
    rebuffer, _ = simulate_buffer(
        sequences, sizes, bandwidth, ctx.buffer_s, manifest.chunk_duration_s
    )
    quality = manifest.quality[algorithm.metric]
    plan_quality = quality[:, i : i + h][sequences, np.arange(h)]
    if algorithm.objective == "max-sum":
        objective = plan_quality.sum(axis=1)
    else:
        objective = plan_quality.min(axis=1) * h
    score = objective - algorithm.rebuffer_penalty_per_s * rebuffer
    return int(sequences[int(np.argmax(score)), 0])


class TestSchemeDecisionEquivalence:
    """The rewired schemes decide exactly as their flat originals did."""

    def _contexts(self, manifest, seed=3):
        rng = np.random.default_rng(seed)
        n = manifest.num_chunks
        indices = list(range(0, n, 7)) + [n - 1]
        contexts = []
        for i in indices:
            contexts.append(
                DecisionContext(
                    chunk_index=i,
                    now_s=5.0 * i,
                    buffer_s=float(rng.uniform(0.0, 40.0)),
                    last_level=(
                        None if i == 0 else int(rng.integers(manifest.num_tracks))
                    ),
                    bandwidth_bps=float(rng.uniform(2e5, 2e7)),
                    playing=i > 1,
                )
            )
        return contexts

    def test_mpc_matches_reference(self):
        video = _bench_video()
        manifest = video.manifest()
        algorithm = MPCAlgorithm()
        algorithm.prepare(manifest)
        for ctx in self._contexts(manifest):
            assert algorithm.select_level(ctx) == _reference_mpc_select(algorithm, ctx)

    @pytest.mark.parametrize("objective", ["max-sum", "max-min"])
    def test_panda_matches_reference(self, objective):
        video = _bench_video()
        manifest = video.manifest(include_quality=True)
        algorithm = PandaCQAlgorithm(objective=objective)
        algorithm.prepare(manifest)
        for ctx in self._contexts(manifest, seed=11):
            assert algorithm.select_level(ctx) == _reference_panda_select(
                algorithm, ctx
            )
