"""Tests for repro.analysis.characterization."""

import numpy as np
import pytest

from repro.analysis.characterization import (
    bitrate_variability_profile,
    characterize,
    quartile_quality_profile,
    quartile_siti_separation,
    size_complexity_correlation,
)


class TestProfiles:
    def test_siti_fractions_are_probabilities(self, ed_ffmpeg_video):
        fractions = quartile_siti_separation(ed_ffmpeg_video)
        assert set(fractions) == {1, 2, 3, 4}
        assert all(0.0 <= v <= 1.0 for v in fractions.values())

    def test_quality_profile_keys(self, ed_ffmpeg_video):
        medians = quartile_quality_profile(ed_ffmpeg_video, "vmaf_tv")
        assert set(medians) == {1, 2, 3, 4}

    def test_quality_profile_respects_track_choice(self, ed_ffmpeg_video):
        low = quartile_quality_profile(ed_ffmpeg_video, "vmaf_phone", track_level=0)
        high = quartile_quality_profile(ed_ffmpeg_video, "vmaf_phone", track_level=5)
        assert high[1] > low[1]

    def test_variability_profile(self, ed_ffmpeg_video):
        profile = bitrate_variability_profile(ed_ffmpeg_video)
        assert len(profile["cov"]) == 6
        assert len(profile["peak_to_average"]) == 6
        assert all(r >= 1.0 for r in profile["peak_to_average"])

    def test_size_complexity_correlation_strong(self, ed_ffmpeg_video):
        assert size_complexity_correlation(ed_ffmpeg_video) > 0.7


class TestCharacterize:
    def test_summary_consistency(self, ed_ffmpeg_video):
        summary = characterize(ed_ffmpeg_video)
        assert summary.video_name == ed_ffmpeg_video.name
        assert summary.q4_quality_gap == pytest.approx(
            np.mean([summary.quality_medians[q] for q in (1, 2, 3)])
            - summary.quality_medians[4]
        )
        assert -1.0 <= summary.min_cross_track_correlation <= 1.0

    def test_metric_parameter(self, ed_ffmpeg_video):
        phone = characterize(ed_ffmpeg_video, metric="vmaf_phone")
        tv = characterize(ed_ffmpeg_video, metric="vmaf_tv")
        assert phone.quality_medians[1] != tv.quality_medians[1]
