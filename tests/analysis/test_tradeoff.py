"""Tests for the Pareto trade-off analysis and scene-consistency claim."""

import pytest

from repro.analysis.tradeoff import (
    ObjectivePoint,
    dominates,
    objective_points,
    pareto_front,
)


def point(scheme, values, objectives=(("q", True), ("stall", False))):
    return ObjectivePoint(scheme=scheme, values=tuple(values), objectives=tuple(objectives))


class TestDominance:
    def test_strict_domination(self):
        a = point("A", (80.0, 0.0))
        b = point("B", (70.0, 5.0))
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_trade_off_no_domination(self):
        a = point("A", (80.0, 5.0))
        b = point("B", (70.0, 0.0))
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_equal_points_do_not_dominate(self):
        a = point("A", (70.0, 1.0))
        b = point("B", (70.0, 1.0))
        assert not dominates(a, b)

    def test_tolerance(self):
        a = point("A", (80.0, 1.05))
        b = point("B", (70.0, 1.0))
        assert not dominates(a, b)
        assert dominates(a, b, tolerance=0.1)

    def test_mismatched_objectives_rejected(self):
        a = point("A", (1.0,), (("q", True),))
        b = point("B", (1.0, 2.0))
        with pytest.raises(ValueError):
            dominates(a, b)


class TestParetoFront:
    def test_front_excludes_dominated(self):
        points = [
            point("best", (80.0, 0.0)),
            point("dominated", (70.0, 5.0)),
            point("tradeoff", (85.0, 3.0)),
        ]
        front = pareto_front(points)
        names = {p.scheme for p in front}
        assert names == {"best", "tradeoff"}

    def test_single_point_is_front(self):
        points = [point("only", (1.0, 1.0))]
        assert pareto_front(points) == points


class TestPaperBalanceClaim:
    def test_cava_on_the_pareto_front(self, ed_ffmpeg_video, lte_traces):
        """§1: CAVA 'achieves a much better balance in the
        multiple-dimension design space' — concretely, no baseline
        Pareto-dominates it across the five §6.1 metrics."""
        from repro.experiments.runner import run_comparison

        results = run_comparison(
            ["CAVA", "RobustMPC", "PANDA/CQ max-min"],
            ed_ffmpeg_video,
            lte_traces[:8],
        )
        points = objective_points(results)
        front = {p.scheme for p in pareto_front(points)}
        assert "CAVA" in front

    def test_objective_points_as_dict(self, short_video, lte_traces):
        from repro.experiments.runner import run_comparison

        results = run_comparison(["CAVA"], short_video, lte_traces[:2])
        data = objective_points(results)[0].as_dict()
        assert set(data) == {
            "q4_quality_mean", "low_quality_fraction", "rebuffer_s",
            "quality_change_per_chunk", "data_usage_mb",
        }


class TestSceneConsistency:
    def test_vbr_more_consistent_than_cbr(self):
        """§1's premise: at equal average bitrate, VBR holds quality more
        constant across scenes than CBR."""
        from repro.analysis.characterization import scene_quality_consistency
        from repro.video.dataset import build_cbr_counterpart, standard_dataset_specs, build_video

        spec = next(s for s in standard_dataset_specs() if s.name == "ED-ffmpeg-h264")
        vbr = build_video(spec, seed=0)
        cbr = build_cbr_counterpart(spec, seed=0)
        assert scene_quality_consistency(vbr) < scene_quality_consistency(cbr)
