"""Shared fixtures: videos, traces, and classifiers built once per run.

Everything is seeded, so the suite is fully deterministic. Fixtures use
``session`` scope because video synthesis (6 tracks x hundreds of chunks
with four quality metrics each) is the expensive step.
"""

from __future__ import annotations

import pytest

from repro.network.traces import synthesize_fcc_traces, synthesize_lte_traces
from repro.video.classify import ChunkClassifier
from repro.video.dataset import (
    VideoSpec,
    build_video,
    fourx_spec,
    standard_dataset_specs,
)

SEED = 0


def spec_by_name(name: str) -> VideoSpec:
    """Look up one of the 16 standard specs by name."""
    for spec in standard_dataset_specs():
        if spec.name == name:
            return spec
    raise KeyError(name)


@pytest.fixture(scope="session")
def ed_ffmpeg_video():
    """Elephant Dream, FFmpeg encode, H.264, 2 s chunks (the paper's
    workhorse video for Figs. 4, 7, 8, 10)."""
    return build_video(spec_by_name("ED-ffmpeg-h264"), seed=SEED)


@pytest.fixture(scope="session")
def ed_youtube_video():
    """Elephant Dream, YouTube-style encode, 5 s chunks (Figs. 1–3)."""
    return build_video(spec_by_name("ED-youtube-h264"), seed=SEED)


@pytest.fixture(scope="session")
def ed_h265_video():
    """Elephant Dream, H.265 (§6.5)."""
    return build_video(spec_by_name("ED-ffmpeg-h265"), seed=SEED)


@pytest.fixture(scope="session")
def bbb_youtube_video():
    """Big Buck Bunny, YouTube-style encode (Fig. 11, Table 2)."""
    return build_video(spec_by_name("BBB-youtube-h264"), seed=SEED)


@pytest.fixture(scope="session")
def fourx_video():
    """The 4x-capped Elephant Dream encode (§3.3 / §6.6)."""
    return build_video(fourx_spec(), seed=SEED)


@pytest.fixture(scope="session")
def short_video():
    """A 2-minute video for fast player/ABR unit tests."""
    spec = VideoSpec(
        name="short-test",
        title="ED",
        genre="animation",
        source="ffmpeg",
        codec="h264",
        chunk_duration_s=2.0,
        cap_ratio=2.0,
        duration_s=120.0,
    )
    return build_video(spec, seed=SEED)


@pytest.fixture(scope="session")
def ed_classifier(ed_ffmpeg_video):
    """Quartile classifier for the FFmpeg ED video."""
    return ChunkClassifier.from_video(ed_ffmpeg_video)


@pytest.fixture(scope="session")
def lte_traces():
    """A small LTE trace set for integration tests."""
    return synthesize_lte_traces(count=12, seed=SEED)


@pytest.fixture(scope="session")
def fcc_traces():
    """A small FCC trace set for integration tests."""
    return synthesize_fcc_traces(count=12, seed=SEED)


@pytest.fixture(scope="session")
def one_lte_trace(lte_traces):
    """A single representative LTE trace."""
    return lte_traces[0]
