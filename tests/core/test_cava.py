"""Tests for the composed CAVA algorithm and its ablations."""

import numpy as np
import pytest

from repro.core.cava import CavaAlgorithm, cava_p1, cava_p12, cava_p123
from repro.core.config import CavaConfig
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.metrics import quality_series, summarize_session
from repro.player.session import run_session


def constant_trace(mbps, duration_s=2000.0):
    return NetworkTrace(f"const-{mbps}", 1.0, np.full(int(duration_s), mbps * 1e6))


class TestConstruction:
    def test_variant_names(self):
        assert cava_p1().name == "CAVA-p1"
        assert cava_p12().name == "CAVA-p12"
        assert cava_p123().name == "CAVA"

    def test_variant_flags(self):
        assert not cava_p1().config.use_differential
        assert not cava_p1().config.use_proactive
        assert cava_p12().config.use_differential
        assert not cava_p12().config.use_proactive
        assert cava_p123().config.use_differential
        assert cava_p123().config.use_proactive

    def test_custom_name(self):
        assert CavaAlgorithm(CavaConfig(), name="X").name == "X"

    def test_prepare_builds_components(self, ed_ffmpeg_video):
        algorithm = cava_p123()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.classifier.num_chunks == ed_ffmpeg_video.num_chunks
        assert algorithm.inner is not None and algorithm.outer is not None


class TestBehaviour:
    def test_no_stall_on_generous_link(self, ed_ffmpeg_video):
        result = run_session(cava_p123(), ed_ffmpeg_video, TraceLink(constant_trace(20.0)))
        assert result.total_stall_s == 0.0
        assert result.levels.mean() > 4.0  # rich link -> high tracks

    def test_survives_starved_link(self, ed_ffmpeg_video):
        """On a link that barely sustains the lowest track, CAVA must
        gravitate to the bottom of the ladder rather than stalling out."""
        lowest = ed_ffmpeg_video.track(0).average_bitrate_bps / 1e6
        result = run_session(
            cava_p123(), ed_ffmpeg_video, TraceLink(constant_trace(lowest * 1.6))
        )
        assert result.levels.mean() < 1.5
        assert result.total_stall_s < 5.0

    def test_deterministic(self, ed_ffmpeg_video, one_lte_trace):
        a = run_session(cava_p123(), ed_ffmpeg_video, TraceLink(one_lte_trace))
        b = run_session(cava_p123(), ed_ffmpeg_video, TraceLink(one_lte_trace))
        assert np.array_equal(a.levels, b.levels)

    def test_reusable_across_sessions(self, ed_ffmpeg_video, lte_traces):
        """prepare() must fully reset state: running twice on the same
        trace brackets a different trace in between."""
        algorithm = cava_p123()
        first = run_session(algorithm, ed_ffmpeg_video, TraceLink(lte_traces[0]))
        run_session(algorithm, ed_ffmpeg_video, TraceLink(lte_traces[1]))
        again = run_session(algorithm, ed_ffmpeg_video, TraceLink(lte_traces[0]))
        assert np.array_equal(first.levels, again.levels)

    def test_buffer_tracks_target(self, ed_ffmpeg_video):
        """With ample bandwidth the buffer should settle near or above the
        base target (60 s), bounded by the 100 s cap."""
        result = run_session(cava_p123(), ed_ffmpeg_video, TraceLink(constant_trace(8.0)))
        settled = result.buffer_after_s[len(result.buffer_after_s) // 2 :]
        assert settled.mean() > 40.0
        assert settled.max() <= 100.0 + 1e-9


class TestDifferentialTreatment:
    def test_q4_gets_higher_levels_than_p1(self, ed_ffmpeg_video, ed_classifier, lte_traces):
        """P2's signature: relative to CAVA-p1, full CAVA raises Q4 chunk
        levels (and Q4 quality)."""
        q4 = ed_classifier.categories == 4
        q4_full, q4_p1 = [], []
        for trace in lte_traces[:6]:
            link = TraceLink(trace)
            full = run_session(cava_p123(), ed_ffmpeg_video, link)
            p1 = run_session(cava_p1(), ed_ffmpeg_video, link)
            q4_full.append(quality_series(full, ed_ffmpeg_video, "vmaf_phone")[q4].mean())
            q4_p1.append(quality_series(p1, ed_ffmpeg_video, "vmaf_phone")[q4].mean())
        assert np.mean(q4_full) > np.mean(q4_p1)

    def test_cava_beats_myopic_on_q4(self, ed_ffmpeg_video, ed_classifier, lte_traces):
        """Fig. 4's claim: CAVA delivers higher Q4 quality than BBA-1/RBA."""
        from repro.abr.bba import BBA1Algorithm
        from repro.abr.rba import RateBasedAlgorithm

        q4 = ed_classifier.categories == 4
        scores = {}
        for name, algorithm_factory in (
            ("CAVA", cava_p123),
            ("BBA-1", BBA1Algorithm),
            ("RBA", RateBasedAlgorithm),
        ):
            values = []
            for trace in lte_traces[:6]:
                result = run_session(algorithm_factory(), ed_ffmpeg_video, TraceLink(trace))
                values.append(
                    quality_series(result, ed_ffmpeg_video, "vmaf_phone")[q4].mean()
                )
            scores[name] = float(np.mean(values))
        assert scores["CAVA"] > scores["BBA-1"]
        assert scores["CAVA"] > scores["RBA"]


class TestProactivePrinciple:
    def test_outer_controller_changes_targets(self, ed_ffmpeg_video):
        algorithm = cava_p123()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        adjustments = algorithm.outer.adjustments
        assert adjustments.max() > 0.0

    def test_p12_has_fixed_target(self, ed_ffmpeg_video):
        algorithm = cava_p12()
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.outer.adjustments.max() == 0.0


class TestClassificationGranularity:
    """§3.1.1: the classification method is pluggable ('e.g., using five
    classes instead of four'); CAVA must work with any class count."""

    def test_five_class_cava_runs(self, ed_ffmpeg_video, one_lte_trace):
        algorithm = CavaAlgorithm(CavaConfig(num_complexity_classes=5))
        result = run_session(algorithm, ed_ffmpeg_video, TraceLink(one_lte_trace))
        assert result.num_chunks == ed_ffmpeg_video.num_chunks

    def test_top_class_is_complex(self, ed_ffmpeg_video):
        algorithm = CavaAlgorithm(CavaConfig(num_complexity_classes=5))
        algorithm.prepare(ed_ffmpeg_video.manifest())
        assert algorithm.classifier.num_classes == 5
        # ~20% of chunks are in the top class.
        fraction = algorithm.classifier.category_fractions()[5]
        assert 0.1 < fraction < 0.3

    def test_similar_outcomes_across_granularity(
        self, ed_ffmpeg_video, ed_classifier, lte_traces
    ):
        """The design principles are independent of the class count: Q4
        quality under 4-class vs 5-class CAVA stays close."""
        from repro.player.metrics import summarize_session

        q4 = {4: [], 5: []}
        for trace in lte_traces[:5]:
            for classes in (4, 5):
                algorithm = CavaAlgorithm(CavaConfig(num_complexity_classes=classes))
                result = run_session(algorithm, ed_ffmpeg_video, TraceLink(trace))
                metrics = summarize_session(
                    result, ed_ffmpeg_video, "vmaf_phone", ed_classifier
                )
                q4[classes].append(metrics.q4_quality_mean)
        assert abs(np.mean(q4[4]) - np.mean(q4[5])) < 4.0

    def test_invalid_class_count_rejected(self):
        with pytest.raises(ValueError):
            CavaConfig(num_complexity_classes=1)
