"""Tests for the short/long-term statistical filters (Fig. 5)."""

import numpy as np
import pytest

from repro.core.filters import (
    long_term_target_adjustments,
    short_term_bitrates,
    window_chunks,
)


class TestWindowChunks:
    @pytest.mark.parametrize(
        "window,duration,expected",
        [(40.0, 2.0, 20), (40.0, 5.0, 8), (200.0, 2.0, 100), (200.0, 5.0, 40), (1.0, 5.0, 1)],
    )
    def test_paper_values(self, window, duration, expected):
        """§6.2's W and W' conversions: 40 s -> 20/8 chunks, 200 s -> 100/40."""
        assert window_chunks(window, duration) == expected

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            window_chunks(0.0, 2.0)


class TestShortTermBitrates:
    def test_shape(self, ed_ffmpeg_video):
        manifest = ed_ffmpeg_video.manifest()
        rbar = short_term_bitrates(manifest, 40.0)
        assert rbar.shape == (manifest.num_tracks, manifest.num_chunks)

    def test_smoother_than_raw(self, ed_ffmpeg_video):
        """The point of P1: the filtered series varies less than raw
        chunk bitrates."""
        manifest = ed_ffmpeg_video.manifest()
        rbar = short_term_bitrates(manifest, 40.0)
        raw = manifest.track_bitrates_bps(3)
        assert np.std(rbar[3]) < np.std(raw)

    def test_window_one_chunk_is_identity(self, ed_ffmpeg_video):
        manifest = ed_ffmpeg_video.manifest()
        rbar = short_term_bitrates(manifest, manifest.chunk_duration_s)
        assert np.allclose(rbar[2], manifest.track_bitrates_bps(2))

    def test_mean_preserved_approximately(self, ed_ffmpeg_video):
        manifest = ed_ffmpeg_video.manifest()
        rbar = short_term_bitrates(manifest, 40.0)
        raw_mean = manifest.track_bitrates_bps(3).mean()
        assert rbar[3].mean() == pytest.approx(raw_mean, rel=0.05)


class TestLongTermAdjustments:
    def test_non_negative(self, ed_ffmpeg_video):
        adj = long_term_target_adjustments(ed_ffmpeg_video.manifest(), 200.0)
        assert np.all(adj >= 0.0)

    def test_raised_before_heavy_windows(self, ed_ffmpeg_video):
        """Positions whose upcoming window is heavier than average get a
        positive target increment; light windows get zero."""
        manifest = ed_ffmpeg_video.manifest()
        adj = long_term_target_adjustments(manifest, 60.0)
        rates = manifest.track_bitrates_bps(3)
        from repro.util.stats import running_mean

        means = running_mean(rates, 30)
        heavy = means > rates.mean() * 1.05
        light = means < rates.mean() * 0.95
        if heavy.any() and light.any():
            assert adj[heavy].mean() > adj[light].mean()
            assert np.all(adj[light] == 0.0)

    def test_seconds_scale_sane(self, ed_ffmpeg_video):
        """Adjustments are seconds of extra buffer; they should be within
        the same order as the window itself."""
        adj = long_term_target_adjustments(ed_ffmpeg_video.manifest(), 200.0)
        assert adj.max() < 200.0

    def test_reference_track_out_of_range(self, ed_ffmpeg_video):
        with pytest.raises(IndexError):
            long_term_target_adjustments(ed_ffmpeg_video.manifest(), 200.0, reference_track=9)

    def test_default_reference_is_middle(self, ed_ffmpeg_video):
        manifest = ed_ffmpeg_video.manifest()
        default = long_term_target_adjustments(manifest, 200.0)
        explicit = long_term_target_adjustments(manifest, 200.0, reference_track=3)
        assert np.array_equal(default, explicit)
