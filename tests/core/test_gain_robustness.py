"""§6.1's controller-tuning claim: "a wide range of Kp and Ki values lead
to good performance" (adopting the PIA methodology).

We sweep Kp over an order of magnitude around the default and check
that CAVA stays in the good regime: minimal rebuffering, Q4 quality
within a few VMAF of the default configuration.
"""

import numpy as np
import pytest

from repro.core.cava import CavaAlgorithm
from repro.core.config import CavaConfig
from repro.network.link import TraceLink
from repro.player.metrics import summarize_session
from repro.player.session import run_session

GAINS = [
    (0.005, 0.0005),
    (0.01, 0.001),   # the default
    (0.02, 0.002),
    (0.04, 0.002),
]


@pytest.fixture(scope="module")
def gain_sweep(request):
    video = request.getfixturevalue("ed_ffmpeg_video")
    traces = request.getfixturevalue("lte_traces")
    classifier = request.getfixturevalue("ed_classifier")
    results = {}
    for kp, ki in GAINS:
        rows = []
        for trace in traces[:8]:
            algorithm = CavaAlgorithm(CavaConfig(kp=kp, ki=ki))
            outcome = run_session(algorithm, video, TraceLink(trace))
            rows.append(summarize_session(outcome, video, "vmaf_phone", classifier))
        results[(kp, ki)] = {
            "q4": float(np.mean([r.q4_quality_mean for r in rows])),
            "stall": float(np.mean([r.rebuffer_s for r in rows])),
            "low": float(np.mean([r.low_quality_fraction for r in rows])),
        }
    return results


class TestGainRobustness:
    def test_all_gains_avoid_stalls(self, gain_sweep):
        for gains, metrics in gain_sweep.items():
            assert metrics["stall"] < 3.0, f"kp,ki={gains} stalls {metrics['stall']}"

    def test_all_gains_keep_q4_quality(self, gain_sweep):
        default = gain_sweep[(0.01, 0.001)]["q4"]
        for gains, metrics in gain_sweep.items():
            assert metrics["q4"] > default - 5.0, f"kp,ki={gains}"

    def test_all_gains_keep_low_quality_rare(self, gain_sweep):
        for gains, metrics in gain_sweep.items():
            assert metrics["low"] < 0.08, f"kp,ki={gains}"
