"""Eq. (3) computed by hand vs the InnerController's objective."""

import numpy as np
import pytest

from repro.core.config import CavaConfig
from repro.core.filters import short_term_bitrates, window_chunks
from repro.core.inner import InnerController
from repro.video.classify import ChunkClassifier


@pytest.fixture(scope="module")
def parts(request):
    video = request.getfixturevalue("ed_ffmpeg_video")
    manifest = video.manifest()
    classifier = ChunkClassifier.from_manifest(manifest)
    config = CavaConfig()
    inner = InnerController(config, manifest, classifier)
    return config, manifest, classifier, inner


class TestObjectiveMatchesEquationThree:
    def test_hand_computed_cost(self, parts):
        config, manifest, classifier, inner = parts
        index, u, bandwidth, last = 25, 1.3, 2.4e6, 2
        alpha = inner.alpha(index, buffer_s=30.0)
        costs = inner.objective(index, u, bandwidth, last, alpha)

        # Recompute Eq. (3) from primitives, in Mbps like the controller.
        w = window_chunks(config.inner_window_s, manifest.chunk_duration_s)
        for level in range(manifest.num_tracks):
            rates = manifest.track_bitrates_bps(level)
            rbar = float(np.mean(rates[index : index + w])) / 1e6
            deviation = config.horizon_chunks * (u * rbar - alpha * bandwidth / 1e6) ** 2
            eta = inner.eta(index)
            r_l = manifest.declared_avg_bitrates_bps[level] / 1e6
            r_last = manifest.declared_avg_bitrates_bps[last] / 1e6
            expected = deviation + eta * (r_l - r_last) ** 2
            assert costs[level] == pytest.approx(expected, rel=1e-9)

    def test_first_chunk_has_no_change_term(self, parts):
        config, manifest, classifier, inner = parts
        costs_none = inner.objective(0, 1.0, 2e6, None, 1.0)
        w = window_chunks(config.inner_window_s, manifest.chunk_duration_s)
        for level in range(manifest.num_tracks):
            rbar = float(np.mean(manifest.track_bitrates_bps(level)[:w])) / 1e6
            expected = config.horizon_chunks * (rbar - 2.0) ** 2
            assert costs_none[level] == pytest.approx(expected, rel=1e-9)

    def test_short_term_filter_is_forward_window_mean(self, parts):
        config, manifest, classifier, inner = parts
        rbar = short_term_bitrates(manifest, config.inner_window_s)
        w = window_chunks(config.inner_window_s, manifest.chunk_duration_s)
        rates = manifest.track_bitrates_bps(4)
        for index in (0, 57, manifest.num_chunks - 3, manifest.num_chunks - 1):
            expected = float(np.mean(rates[index : index + w]))
            assert rbar[4, index] == pytest.approx(expected, rel=1e-12)

    def test_argmin_is_selected_level_without_heuristic(self, parts):
        config, manifest, classifier, inner = parts
        # Pick a Q4 chunk: the no-deflation heuristic never applies there.
        index = int(classifier.complex_positions()[3])
        u, bandwidth = 1.1, 1.8e6
        alpha = inner.alpha(index, buffer_s=40.0)
        expected = int(np.argmin(inner.objective(index, u, bandwidth, 3, alpha)))
        assert inner.select(index, u, bandwidth, 40.0, 3) == expected
