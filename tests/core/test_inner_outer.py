"""Tests for the inner (Eqs. 3-4) and outer (Eq. 5) controllers."""

import numpy as np
import pytest

from repro.core.config import CavaConfig
from repro.core.inner import InnerController
from repro.core.outer import OuterController
from repro.video.classify import ChunkClassifier


@pytest.fixture(scope="module")
def setup(request):
    video = request.getfixturevalue("ed_ffmpeg_video")
    manifest = video.manifest()
    classifier = ChunkClassifier.from_manifest(manifest)
    return video, manifest, classifier


class TestAlpha:
    def test_q4_inflated(self, setup):
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(), manifest, classifier)
        q4 = int(classifier.complex_positions()[0])
        assert inner.alpha(q4, buffer_s=30.0) == CavaConfig().alpha_complex

    def test_simple_deflated(self, setup):
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(), manifest, classifier)
        q1 = int(np.flatnonzero(classifier.categories == 1)[0])
        assert inner.alpha(q1, buffer_s=30.0) == CavaConfig().alpha_simple

    def test_ablation_disables_alpha(self, setup):
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(use_differential=False), manifest, classifier)
        q4 = int(classifier.complex_positions()[0])
        assert inner.alpha(q4, buffer_s=30.0) == 1.0

    def test_q4_relief_heuristic(self, setup):
        video, manifest, classifier = setup
        config = CavaConfig(enable_q4_relief_heuristic=True, q4_relief_buffer_s=8.0)
        inner = InnerController(config, manifest, classifier)
        q4 = int(classifier.complex_positions()[0])
        assert inner.alpha(q4, buffer_s=4.0) == 1.0  # buffer low: no inflation
        assert inner.alpha(q4, buffer_s=30.0) == config.alpha_complex


class TestEta:
    def test_zero_on_first_chunk(self, setup):
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(), manifest, classifier)
        assert inner.eta(0) == 0.0

    def test_zero_across_category_boundary(self, setup):
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(), manifest, classifier)
        for index in range(1, classifier.num_chunks):
            boundary = classifier.is_complex(index) != classifier.is_complex(index - 1)
            if boundary:
                assert inner.eta(index) == 0.0
            else:
                assert inner.eta(index) == CavaConfig().track_change_weight

    def test_ablation_keeps_eta_constant(self, setup):
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(use_differential=False), manifest, classifier)
        assert all(inner.eta(i) == 1.0 for i in range(1, 20))


class TestSelect:
    def test_u_splits_bandwidth(self, setup):
        """Higher u (buffer-filling mode) must never pick a higher track."""
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(), manifest, classifier)
        lo_u = inner.select(10, u=0.5, bandwidth_bps=2e6, buffer_s=50.0, last_level=None)
        hi_u = inner.select(10, u=3.0, bandwidth_bps=2e6, buffer_s=50.0, last_level=None)
        assert hi_u <= lo_u

    def test_bandwidth_monotonicity(self, setup):
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(), manifest, classifier)
        poor = inner.select(10, u=1.0, bandwidth_bps=2e5, buffer_s=50.0, last_level=None)
        rich = inner.select(10, u=1.0, bandwidth_bps=2e7, buffer_s=50.0, last_level=None)
        assert rich >= poor

    def test_track_change_penalty_pulls_toward_last(self, setup):
        video, manifest, classifier = setup
        config = CavaConfig(track_change_weight=1e9)
        inner = InnerController(config, manifest, classifier)
        # Find a non-boundary chunk so eta applies.
        index = next(
            i for i in range(1, classifier.num_chunks)
            if classifier.is_complex(i) == classifier.is_complex(i - 1)
        )
        level = inner.select(index, u=1.0, bandwidth_bps=2e6, buffer_s=50.0, last_level=5)
        assert level == 5  # the enormous eta locks the previous level

    def test_no_deflation_heuristic(self, setup):
        """A simple chunk that would land on a very low level with a
        healthy buffer is re-solved with alpha = 1 (same or higher level)."""
        video, manifest, classifier = setup
        config = CavaConfig()
        inner = InnerController(config, manifest, classifier)
        q1 = int(np.flatnonzero(classifier.categories == 1)[0])
        # Bandwidth tuned so deflated selection is very low.
        with_heuristic = inner.select(q1, u=1.0, bandwidth_bps=2.2e5, buffer_s=30.0, last_level=None)
        costs_deflated = inner.objective(q1, 1.0, 2.2e5, None, config.alpha_simple)
        deflated_level = int(np.argmin(costs_deflated))
        assert with_heuristic >= deflated_level

    def test_invalid_u_rejected(self, setup):
        video, manifest, classifier = setup
        inner = InnerController(CavaConfig(), manifest, classifier)
        with pytest.raises(ValueError):
            inner.select(0, u=0.0, bandwidth_bps=1e6, buffer_s=0.0, last_level=None)

    def test_classifier_mismatch_rejected(self, setup, short_video):
        video, manifest, classifier = setup
        with pytest.raises(ValueError, match="chunk count"):
            InnerController(CavaConfig(), short_video.manifest(), classifier)


class TestOuterController:
    def test_base_target_without_proactive(self, setup):
        video, manifest, classifier = setup
        config = CavaConfig(use_proactive=False)
        outer = OuterController(config, manifest)
        targets = [outer.target_buffer_s(i) for i in range(0, manifest.num_chunks, 17)]
        assert all(t == config.base_target_buffer_s for t in targets)

    def test_proactive_raises_target_somewhere(self, setup):
        video, manifest, classifier = setup
        outer = OuterController(CavaConfig(), manifest)
        targets = np.array([outer.target_buffer_s(i) for i in range(manifest.num_chunks)])
        assert targets.max() > CavaConfig().base_target_buffer_s
        assert targets.min() >= CavaConfig().base_target_buffer_s

    def test_target_capped_at_factor(self, setup):
        video, manifest, classifier = setup
        config = CavaConfig(base_target_buffer_s=20.0, max_target_factor=2.0)
        outer = OuterController(config, manifest)
        targets = [outer.target_buffer_s(i) for i in range(manifest.num_chunks)]
        assert max(targets) <= 40.0 + 1e-9
