"""Tests for the PID feedback block (§5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CavaConfig
from repro.core.pid import PIDController


def make_pid(**kwargs):
    return PIDController(CavaConfig(**kwargs), chunk_duration_s=2.0)


class TestControlDirection:
    def test_below_target_fills_faster(self):
        """Buffer below target -> u > 1 (pick lower bitrate, fill buffer)."""
        pid = make_pid()
        u = pid.update(now_s=1.0, buffer_s=10.0, target_s=60.0)
        assert u > 1.0

    def test_above_target_drains(self):
        """Buffer above target -> u < 1 (pick higher bitrate, drain)."""
        pid = make_pid()
        u = pid.update(now_s=1.0, buffer_s=90.0, target_s=60.0)
        assert u < 1.0

    def test_at_target_near_unity(self):
        pid = make_pid()
        u = pid.update(now_s=1.0, buffer_s=60.0, target_s=60.0)
        assert u == pytest.approx(1.0, abs=0.2)

    def test_indicator_term(self):
        """Below one chunk of buffer the indicator contributes 0."""
        config = CavaConfig(kp=0.01, ki=0.0)
        low = PIDController(config, 2.0).update(1.0, buffer_s=1.0, target_s=60.0)
        high = PIDController(config, 2.0).update(1.0, buffer_s=3.0, target_s=60.0)
        # Same error magnitude difference comes from the indicator.
        assert low == pytest.approx(0.01 * 59.0)
        assert high == pytest.approx(0.01 * 57.0 + 1.0)


class TestSaturationAndWindup:
    def test_output_saturates(self):
        pid = make_pid()
        u = pid.update(1.0, buffer_s=0.0, target_s=1e6)
        assert u <= pid.config.u_max
        u = pid.update(2.0, buffer_s=1e6, target_s=0.0)
        assert u >= pid.config.u_min

    def test_integral_clamped(self):
        pid = make_pid()
        for step in range(1, 200):
            pid.update(float(step * 10), buffer_s=0.0, target_s=120.0)
        assert abs(pid.integral) <= pid.config.integral_limit

    def test_reset_clears_state(self):
        pid = make_pid()
        pid.update(5.0, buffer_s=0.0, target_s=60.0)
        pid.reset()
        assert pid.integral == 0.0


class TestIntegralDynamics:
    def test_integral_accumulates_error_over_time(self):
        pid = make_pid(ki=0.001)
        pid.update(1.0, buffer_s=30.0, target_s=60.0)  # dt=1, error=30
        assert pid.integral == pytest.approx(30.0)
        pid.update(3.0, buffer_s=30.0, target_s=60.0)  # dt=2, error=30
        assert pid.integral == pytest.approx(90.0)

    def test_time_going_backwards_is_ignored(self):
        pid = make_pid()
        pid.update(5.0, buffer_s=30.0, target_s=60.0)
        before = pid.integral
        pid.update(4.0, buffer_s=30.0, target_s=60.0)  # dt clamps to 0
        assert pid.integral == pytest.approx(before)

    def test_steady_state_convergence(self):
        """Repeated updates at the target keep u near the indicator value."""
        pid = make_pid()
        u = 1.0
        for step in range(1, 50):
            u = pid.update(float(step), buffer_s=60.0, target_s=60.0)
        assert u == pytest.approx(1.0, abs=0.05)


class TestValidation:
    def test_bad_chunk_duration(self):
        with pytest.raises(ValueError):
            PIDController(CavaConfig(), chunk_duration_s=0.0)

    def test_negative_inputs_rejected(self):
        pid = make_pid()
        with pytest.raises(ValueError):
            pid.update(-1.0, 0.0, 60.0)
        with pytest.raises(ValueError):
            pid.update(1.0, -1.0, 60.0)


@given(
    buffers=st.lists(st.floats(min_value=0.0, max_value=150.0), min_size=1, max_size=50),
)
@settings(max_examples=50)
def test_property_output_always_in_bounds(buffers):
    pid = make_pid()
    for step, buffer_s in enumerate(buffers, start=1):
        u = pid.update(float(step), buffer_s, 60.0)
        assert pid.config.u_min <= u <= pid.config.u_max
