"""Tests for the CAVA configuration grid search."""

import pytest

from repro.core.tuning import default_objective, expand_grid, grid_search


class TestExpandGrid:
    def test_cartesian_product(self):
        grid = {"a": (1, 2), "b": (10,)}
        combos = expand_grid(grid)
        assert combos == [{"a": 1, "b": 10}, {"a": 2, "b": 10}]

    def test_empty_grid_is_defaults(self):
        assert expand_grid({}) == [{}]


class TestGridSearch:
    def test_ranked_results(self, short_video, lte_traces):
        results = grid_search(
            {"inner_window_s": (2.0, 40.0)},
            short_video,
            lte_traces[:4],
        )
        assert len(results) == 2
        assert results[0].score >= results[1].score
        assert all("inner_window_s" in r.overrides for r in results)

    def test_window_40_beats_window_2(self, ed_ffmpeg_video, lte_traces):
        """The §6.2 conclusion falls out of the search: W = 40 s scores
        at least as well as W = 2 s."""
        results = grid_search(
            {"inner_window_s": (2.0, 40.0)},
            ed_ffmpeg_video,
            lte_traces[:6],
        )
        best = results[0]
        assert best.overrides["inner_window_s"] == 40.0

    def test_describe(self, short_video, lte_traces):
        results = grid_search({"kp": (0.01,)}, short_video, lte_traces[:2])
        assert "kp=0.01" in results[0].describe()

    def test_invalid_field_raises(self, short_video, lte_traces):
        with pytest.raises(TypeError):
            grid_search({"warp": (1,)}, short_video, lte_traces[:2])


class TestObjective:
    def test_penalties_applied(self, short_video, lte_traces):
        from repro.experiments.runner import run_scheme_on_traces

        sweep = run_scheme_on_traces("CAVA", short_video, lte_traces[:3])
        lenient = default_objective(sweep, rebuffer_penalty=0.0, low_quality_penalty=0.0)
        strict = default_objective(sweep, rebuffer_penalty=50.0, low_quality_penalty=500.0)
        assert strict <= lenient
