"""Tests for the dash.js-style harness (§6.8)."""

import numpy as np
import pytest

from repro.abr.bola import BolaEAlgorithm
from repro.core.cava import cava_p123
from repro.dashjs.harness import DashJsConfig, OverheadLink, run_dashjs_session
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace


def constant_trace(mbps, duration_s=2000.0):
    return NetworkTrace(f"const-{mbps}", 1.0, np.full(int(duration_s), mbps * 1e6))


class TestOverheadLink:
    def test_overhead_added(self):
        inner = TraceLink(constant_trace(1.0))
        link = OverheadLink(inner, overhead_s=0.5)
        result = link.download(1e6, start_s=0.0)
        assert result.finish_s == pytest.approx(1.5)
        assert result.start_s == 0.0

    def test_zero_overhead_passthrough(self):
        inner = TraceLink(constant_trace(1.0))
        link = OverheadLink(inner, overhead_s=0.0)
        assert link.download(1e6, 0.0).finish_s == pytest.approx(1.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            OverheadLink(TraceLink(constant_trace(1.0)), overhead_s=-0.1)


class TestInstrumentation:
    def test_counts_decisions(self, short_video, one_lte_trace):
        run = run_dashjs_session(cava_p123(), short_video, one_lte_trace)
        assert run.decisions == short_video.num_chunks
        assert run.rule_overhead_s > 0.0
        assert run.overhead_per_decision_ms > 0.0

    def test_wrapped_behaviour_unchanged(self, short_video, one_lte_trace):
        """Instrumentation must not alter decisions."""
        config = DashJsConfig(request_overhead_s=0.0)
        instrumented = run_dashjs_session(cava_p123(), short_video, one_lte_trace, config)
        from repro.player.session import run_session

        plain = run_session(cava_p123(), short_video, TraceLink(one_lte_trace))
        assert np.array_equal(instrumented.result.levels, plain.levels)


class TestPaperClaims:
    def test_cava_rule_is_lightweight(self, ed_ffmpeg_video, one_lte_trace):
        """§6.8 profiles CAVA's rule at ~56 ms per 10-minute video; our
        Python implementation should stay within the same order (< 1 s)."""
        run = run_dashjs_session(cava_p123(), ed_ffmpeg_video, one_lte_trace)
        assert run.rule_overhead_s < 1.0

    def test_overhead_delays_downloads(self, short_video, one_lte_trace):
        """Per-request overhead shows up in download completion times
        (later in the session, buffer-cap idling can absorb it)."""
        fast = run_dashjs_session(
            cava_p123(), short_video, one_lte_trace, DashJsConfig(request_overhead_s=0.0)
        )
        slow = run_dashjs_session(
            cava_p123(), short_video, one_lte_trace, DashJsConfig(request_overhead_s=0.5)
        )
        assert slow.result.download_finish_s[0] > fast.result.download_finish_s[0]

    def test_bola_runs_in_harness(self, short_video, one_lte_trace):
        run = run_dashjs_session(BolaEAlgorithm("seg"), short_video, one_lte_trace)
        assert run.result.num_chunks == short_video.num_chunks
