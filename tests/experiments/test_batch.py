"""Batch engine correctness: capability gating and bit-identity.

The lockstep batch engine is only allowed to exist because its results
are indistinguishable from the scalar session loop's. These tests check
the contract at every layer the dispatch touches:

- ``batch_capability`` accepts exactly the configurations the engine
  supports and rejects the rest (custom estimators, latency faults, the
  kill-switch, schemes without a batch decider);
- ``run_batch_sessions`` is bit-identical to the scalar loop for every
  batchable scheme, at full width and at a width that forces lane
  slicing (``to_dict`` equality covers every per-chunk float);
- a lane of a batch reproduces the archived golden snapshot byte for
  byte, tying the engine to the same oracle the scalar path answers to;
- the ``run_comparison``/``ParallelSweepRunner`` dispatch produces the
  same sweep results whether the engine is enabled, disabled, serial,
  or pooled;
- unit sizing costs batchable specs with the amortized batch numbers.
"""

import json
import os

import pytest

from repro.abr.registry import make_scheme, needs_quality_manifest
from repro.experiments.batch import (
    DISABLE_BATCH_ENV,
    batch_capability,
    run_batch_sessions,
)
from repro.experiments.golden import (
    GOLDEN_METRIC,
    GOLDEN_NETWORK,
    GOLDEN_TRACE_SEED,
    golden_path,
    golden_trace,
    golden_video,
)
from repro.experiments.parallel import (
    _BATCH_SCHEME_COSTS,
    _SCHEME_COSTS,
    ParallelSweepRunner,
    SweepSpec,
    _session_cost,
)
from repro.experiments.runner import run_comparison
from repro.faults.plan import FaultPlan, LatencyFault, ScaleFault
from repro.network.estimator import HarmonicMeanEstimator
from repro.network.link import TraceLink
from repro.network.traces import synthesize_lte_traces
from repro.player.session import SessionConfig, StreamingSession

#: CI exports this to exercise the dispatch under both fork and spawn.
MP_CONTEXT = os.environ.get("REPRO_MP_START_METHOD") or None

#: Every scheme the engine currently vectorizes; anything else must be
#: rejected by the capability probe rather than silently run wrong.
BATCHABLE_SCHEMES = (
    "CAVA",
    "CAVA-p1",
    "CAVA-p12",
    "RBA",
    "MPC",
    "RobustMPC",
    "PANDA/CQ max-sum",
    "PANDA/CQ max-min",
)


@pytest.fixture(scope="module")
def video():
    return golden_video()


@pytest.fixture(scope="module")
def traces():
    # Trace 0 is the golden trace, so golden-lane comparison rides the
    # same batch as the scalar sweep.
    return synthesize_lte_traces(count=5, seed=GOLDEN_TRACE_SEED)


def scalar_sessions(scheme, video, traces):
    manifest = video.manifest(include_quality=needs_quality_manifest(scheme))
    results = []
    for trace in traces:
        algorithm = make_scheme(scheme, metric=GOLDEN_METRIC)
        results.append(
            StreamingSession(SessionConfig()).run(algorithm, manifest, TraceLink(trace))
        )
    return results


class TestCapability:
    def test_accepts_plain_schemes(self):
        for scheme in BATCHABLE_SCHEMES:
            assert batch_capability(scheme, network=GOLDEN_NETWORK), scheme

    def test_rejects_custom_estimator(self):
        assert not batch_capability(
            "CAVA", estimator_factory=lambda trace: HarmonicMeanEstimator()
        )

    def test_rejects_latency_faults(self):
        plan = FaultPlan(faults=(LatencyFault(p=0.5, spike_s=1.0),), seed=7)
        assert not batch_capability("CAVA", fault_plan=plan)

    def test_accepts_trace_only_faults(self):
        # Trace-level faults are applied before traces reach a session;
        # wrap_link is a no-op for them, so the batch engine is exact.
        plan = FaultPlan(faults=(ScaleFault(factor=0.5),), seed=7)
        assert batch_capability("CAVA", fault_plan=plan)

    def test_rejects_schemes_without_batch_decider(self):
        assert not batch_capability("BOLA-E avg")

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv(DISABLE_BATCH_ENV, "1")
        assert not batch_capability("CAVA")


@pytest.mark.parametrize("scheme", BATCHABLE_SCHEMES)
@pytest.mark.parametrize("max_lanes", [None, 2])
def test_batch_bit_identical_to_scalar(scheme, video, traces, max_lanes):
    scalars = scalar_sessions(scheme, video, traces)
    batched = run_batch_sessions(
        scheme, video, traces, network=GOLDEN_NETWORK, max_lanes=max_lanes
    )
    assert batched is not None
    assert len(batched) == len(scalars)
    for scalar, batch in zip(scalars, batched):
        assert batch.to_dict() == scalar.to_dict()


@pytest.mark.parametrize("scheme", ["CAVA", "MPC", "PANDA/CQ max-sum"])
def test_batch_lane_matches_golden_snapshot(scheme, video, traces):
    path = golden_path(scheme)
    if not path.exists():
        pytest.skip(f"no golden snapshot for {scheme}")
    assert traces[0].throughputs_bps.tolist() == golden_trace().throughputs_bps.tolist()
    batched = run_batch_sessions(scheme, video, traces, network=GOLDEN_NETWORK)
    archived = json.loads(path.read_text())
    actual = batched[0].to_dict()
    assert actual.keys() == archived.keys()
    for key in archived:
        assert actual[key] == archived[key], f"{scheme}: field {key!r} diverged"


class TestSweepDispatch:
    def test_run_comparison_identical_with_engine_disabled(
        self, video, traces, monkeypatch
    ):
        schemes = ["CAVA", "RBA", "MPC"]
        batched = run_comparison(schemes, video, traces, network=GOLDEN_NETWORK)
        monkeypatch.setenv(DISABLE_BATCH_ENV, "1")
        scalar = run_comparison(schemes, video, traces, network=GOLDEN_NETWORK)
        for scheme in schemes:
            assert batched[scheme].metrics == scalar[scheme].metrics

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_engine_identical(self, video, traces, workers, monkeypatch):
        schemes = ["CAVA", "PANDA/CQ max-min"]
        monkeypatch.setenv(DISABLE_BATCH_ENV, "1")
        scalar = run_comparison(schemes, video, traces, network=GOLDEN_NETWORK)
        monkeypatch.delenv(DISABLE_BATCH_ENV)
        engine = ParallelSweepRunner(
            n_workers=workers, min_parallel_sessions=0, mp_context=MP_CONTEXT
        )
        pooled = engine.run_comparison(schemes, video, traces, network=GOLDEN_NETWORK)
        for scheme in schemes:
            assert pooled[scheme].metrics == scalar[scheme].metrics


class TestBatchAwareCosts:
    def test_batchable_scheme_uses_amortized_cost(self):
        spec = SweepSpec(scheme="MPC", video_key="v")
        assert _session_cost(spec) == _BATCH_SCHEME_COSTS["MPC"]
        assert _session_cost(spec) < _SCHEME_COSTS["MPC"]

    def test_non_batchable_spec_keeps_scalar_cost(self):
        spec = SweepSpec(
            scheme="MPC",
            video_key="v",
            estimator_factory=lambda trace: HarmonicMeanEstimator(),
        )
        assert _session_cost(spec) == _SCHEME_COSTS["MPC"]

    def test_kill_switch_restores_scalar_costs(self, monkeypatch):
        monkeypatch.setenv(DISABLE_BATCH_ENV, "1")
        assert _session_cost(SweepSpec(scheme="RBA", video_key="v")) == 1.0
