"""Tests for the shared-memory worker data plane.

Two load-bearing properties: attached views must be *bit-equal* to the
source arrays (the data plane may never change results), and the
per-task payload on the pool's wire must stay a few integers — the
whole point of publishing assets once instead of pickling them per
worker or per task.
"""

import pickle

import numpy as np
import pytest

from repro.experiments import parallel
from repro.experiments.dataplane import SharedDataPlane, attach_plane
from repro.experiments.parallel import (
    SHM_ATTACHED_WORKERS_METRIC,
    SHM_BLOCKS_METRIC,
    SHM_BYTES_METRIC,
    ParallelSweepRunner,
)
from repro.experiments.runner import run_comparison
from repro.network.link import TraceLink, cumulative_bits_table
from repro.telemetry.metrics import MetricsRegistry

SCHEMES = ["CAVA", "RBA"]


def _assert_comparisons_identical(expected, actual):
    assert list(expected) == list(actual)
    for scheme in expected:
        assert expected[scheme].metrics == actual[scheme].metrics


class TestPublishAttachRoundtrip:
    @pytest.fixture()
    def plane(self, short_video, lte_traces):
        plane = SharedDataPlane.publish(
            {short_video.name: short_video}, {None: lte_traces[:4]}
        )
        yield plane
        plane.close_and_unlink()

    def test_views_are_bit_equal_and_read_only(
        self, plane, short_video, lte_traces
    ):
        videos, traces_by_plan, shm = attach_plane(plane.manifest)
        try:
            rebuilt = videos[short_video.name]
            assert rebuilt.name == short_video.name
            assert rebuilt.chunk_duration_s == short_video.chunk_duration_s
            for track, original in zip(rebuilt.tracks, short_video.tracks):
                assert np.array_equal(
                    track.chunk_sizes_bits, original.chunk_sizes_bits
                )
                assert not track.chunk_sizes_bits.flags.writeable
                for metric, values in original.qualities.items():
                    assert np.array_equal(track.qualities[metric], values)
            assert np.array_equal(rebuilt.complexity, short_video.complexity)

            for trace, original in zip(traces_by_plan[None], lte_traces[:4]):
                assert trace.name == original.name
                assert np.array_equal(
                    trace.throughputs_bps, original.throughputs_bps
                )
                assert not trace.throughputs_bps.flags.writeable
                # The published cumulative table is the one TraceLink
                # would compute locally — same function, same bits.
                assert np.array_equal(
                    trace.shared_cumulative_bits, cumulative_bits_table(original)
                )
        finally:
            shm.close()

    def test_attached_trace_digest_matches_source(self, plane, lte_traces):
        _videos, traces_by_plan, shm = attach_plane(plane.manifest)
        try:
            for trace, original in zip(traces_by_plan[None], lte_traces[:4]):
                assert trace.digest() == original.digest()
        finally:
            shm.close()

    def test_link_from_shared_table_matches_local_build(self, plane, lte_traces):
        _videos, traces_by_plan, shm = attach_plane(plane.manifest)
        try:
            shared_link = TraceLink(traces_by_plan[None][0])
            local_link = TraceLink(lte_traces[0])
            for size_bits, start_s in ((4e6, 0.0), (1.2e7, 3.7), (2.5e5, 41.0)):
                assert shared_link.download(size_bits, start_s) == local_link.download(
                    size_bits, start_s
                )
        finally:
            shm.close()

    def test_unlink_is_idempotent(self, short_video, lte_traces):
        plane = SharedDataPlane.publish(
            {short_video.name: short_video}, {None: lte_traces[:2]}
        )
        assert plane.nbytes > 0
        plane.close_and_unlink()
        plane.close_and_unlink()  # second call is a no-op, not an error
        with pytest.raises(FileNotFoundError):
            attach_plane(plane.manifest)


class _PayloadMeasuringPool(parallel.ProcessPoolExecutor):
    """Pool that records the pickled size of every task's payload."""

    payload_sizes = []

    def submit(self, fn, *args, **kwargs):
        type(self).payload_sizes.append(len(pickle.dumps((args, kwargs))))
        return super().submit(fn, *args, **kwargs)


class TestZeroCopyDataPlaneInSweeps:
    def test_per_task_payload_is_three_integers(
        self, monkeypatch, short_video, lte_traces
    ):
        _PayloadMeasuringPool.payload_sizes = []
        monkeypatch.setattr(
            parallel, "ProcessPoolExecutor", _PayloadMeasuringPool
        )
        engine = ParallelSweepRunner(n_workers=2, min_parallel_sessions=0)
        engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        sizes = _PayloadMeasuringPool.payload_sizes
        assert sizes, "pool path was not exercised"
        # (spec_idx, start, stop): a constant few dozen bytes per task,
        # no matter how large the videos and traces are.
        assert max(sizes) < 128
        assert len(set(sizes)) <= 2  # int widths, not asset sizes

    def test_shared_and_inline_paths_bit_identical(self, short_video, lte_traces):
        traces = lte_traces[:4]
        baseline = run_comparison(SCHEMES, short_video, traces)
        shared = ParallelSweepRunner(
            n_workers=2, min_parallel_sessions=0, use_shared_memory=True
        ).run_comparison(SCHEMES, short_video, traces)
        inline = ParallelSweepRunner(
            n_workers=2, min_parallel_sessions=0, use_shared_memory=False
        ).run_comparison(SCHEMES, short_video, traces)
        _assert_comparisons_identical(baseline, shared)
        _assert_comparisons_identical(baseline, inline)

    def test_shm_telemetry_reported(self, short_video, lte_traces):
        registry = MetricsRegistry()
        engine = ParallelSweepRunner(
            n_workers=2, min_parallel_sessions=0, registry=registry
        )
        engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        assert registry.gauge(SHM_BLOCKS_METRIC).value == 1
        assert registry.gauge(SHM_BYTES_METRIC).value > 0
        attached = registry.counter(SHM_ATTACHED_WORKERS_METRIC).value
        assert 1 <= attached <= 2
