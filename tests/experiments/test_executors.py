"""Executor-backend equivalence and the multi-host lease fabric.

Every backend must honor the determinism contract: bit-identical
results, identically ordered, whatever runs the planned units. The
multi-host backend additionally must survive a dead peer — a stale
lease is reclaimed and its range recomputed, never dropped and never
double-merged.
"""

import threading

import pytest

from repro.experiments.executors import (
    MULTIHOST_PLAN_WORKERS,
    AsyncioExecutorBackend,
    MultiHostExecutorBackend,
    PoolExecutorBackend,
    resolve_executor,
)
from repro.experiments.leases import LeaseBoard, SweepRecipe, recipe_sweep_id, write_manifest
from repro.experiments.parallel import ParallelSweepRunner, SweepSpec
from repro.experiments.store import SessionStore
from repro.experiments.runner import run_comparison
from repro.telemetry.metrics import (
    LEASES_CLAIMED_METRIC,
    LEASES_RECLAIMED_METRIC,
    MetricsRegistry,
)

from tests.experiments.test_leases import backdate
from tests.experiments.test_parallel import assert_sweeps_identical

SCHEMES = ["CAVA", "RBA"]


class TestResolveExecutor:
    def test_names_resolve(self):
        assert isinstance(resolve_executor("pool"), PoolExecutorBackend)
        assert isinstance(resolve_executor("asyncio"), AsyncioExecutorBackend)
        assert isinstance(resolve_executor("multihost"), MultiHostExecutorBackend)
        assert isinstance(resolve_executor(None), PoolExecutorBackend)

    def test_instance_passes_through(self):
        backend = PoolExecutorBackend()
        assert resolve_executor(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("threads")
        with pytest.raises(ValueError, match="unknown executor"):
            ParallelSweepRunner(executor="threads")


class TestAsyncioBackend:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_matches_serial(self, short_video, lte_traces, n_workers):
        serial = run_comparison(SCHEMES, short_video, lte_traces[:6])
        engine = ParallelSweepRunner(n_workers=n_workers, executor="asyncio")
        result = engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        assert_sweeps_identical(serial, result)

    def test_overlapped_store_writes_land(self, short_video, lte_traces, tmp_path):
        store = SessionStore(tmp_path)
        engine = ParallelSweepRunner(
            n_workers=2, executor="asyncio", store=store
        )
        first = engine.run_comparison(["RBA"], short_video, lte_traces[:6])
        warm = ParallelSweepRunner(store=SessionStore(tmp_path))
        second = warm.run_comparison(["RBA"], short_video, lte_traces[:6])
        assert_sweeps_identical(first, second)
        assert warm.store.stats.hits == 6


class TestMultiHostBackend:
    def test_requires_store(self, short_video, lte_traces):
        engine = ParallelSweepRunner(executor="multihost")
        with pytest.raises(ValueError, match="session store"):
            engine.run_comparison(["RBA"], short_video, lte_traces[:4])

    def test_requires_raise_policy(self, short_video, lte_traces, tmp_path):
        engine = ParallelSweepRunner(
            executor="multihost", store=SessionStore(tmp_path), on_error="skip"
        )
        with pytest.raises(ValueError, match="raise"):
            engine.run_comparison(["RBA"], short_video, lte_traces[:4])

    def test_single_host_matches_serial(self, short_video, lte_traces, tmp_path):
        serial = run_comparison(SCHEMES, short_video, lte_traces[:6])
        engine = ParallelSweepRunner(
            executor="multihost", store=SessionStore(tmp_path)
        )
        result = engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        assert_sweeps_identical(serial, result)

    def test_two_workers_share_one_store(self, short_video, lte_traces, tmp_path):
        # Two engines race over the same store directory — the lease
        # board splits the grid between them, and both merge the full
        # grid back bit-identical to the serial computation.
        serial = run_comparison(SCHEMES, short_video, lte_traces[:8])
        outcomes = {}

        def work(name):
            engine = ParallelSweepRunner(
                executor="multihost",
                store=SessionStore(tmp_path),
                lease_poll_s=0.05,
            )
            outcomes[name] = engine.run_comparison(
                SCHEMES, short_video, lte_traces[:8]
            )

        threads = [
            threading.Thread(target=work, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert_sweeps_identical(serial, outcomes["a"])
        assert_sweeps_identical(serial, outcomes["b"])

    def test_dead_worker_lease_is_reclaimed(self, short_video, lte_traces, tmp_path):
        # Simulate a peer that claimed units and died: pre-claim every
        # grid unit under another owner and backdate the leases past the
        # ttl. The surviving engine must reclaim them (counted in the
        # registry) and finish the sweep with correct results.
        traces = lte_traces[:6]
        store = SessionStore(tmp_path)
        registry = MetricsRegistry()
        engine = ParallelSweepRunner(
            executor="multihost", store=store, registry=registry,
            lease_ttl_s=5.0, lease_poll_s=0.05,
        )
        specs = [
            SweepSpec(scheme=scheme, video_key=short_video.name, network="lte")
            for scheme in SCHEMES
        ]
        units = engine.scheduler.plan_grid_units(
            specs, {None: traces}, MULTIHOST_PLAN_WORKERS
        )
        assert units, "grid must plan at least one unit"
        dead = LeaseBoard(
            tmp_path, engine_sweep_id(engine, specs, short_video, traces),
            owner="dead-host:1", ttl_s=5.0,
        )
        for unit in units:
            assert dead.claim(unit.name)
            backdate(dead, unit.name, age_s=600.0)
        serial = run_comparison(SCHEMES, short_video, traces)
        result = engine.run_comparison(SCHEMES, short_video, traces)
        assert_sweeps_identical(serial, result)
        assert registry.value(LEASES_RECLAIMED_METRIC) == len(units)
        assert registry.value(LEASES_CLAIMED_METRIC) == len(units)

    def test_explicit_sweep_id_used_for_leases(self, short_video, lte_traces, tmp_path):
        engine = ParallelSweepRunner(
            executor="multihost", store=SessionStore(tmp_path),
            sweep_id="feedface", registry=MetricsRegistry(),
        )
        engine.run_comparison(["RBA"], short_video, lte_traces[:4])
        assert (tmp_path / "leases" / "feedface").is_dir()


def engine_sweep_id(engine, specs, video, traces):
    """The lease-directory id the engine will derive for this grid."""
    from repro.experiments.scheduler import sweep_grid_id
    from repro.player.session import SessionConfig

    if engine.sweep_id is not None:
        return engine.sweep_id
    keys = [
        engine.scheduler.keys_for(spec, video, traces, SessionConfig())
        for spec in specs
    ]
    return sweep_grid_id(keys)


class TestCachedShortCircuit:
    @pytest.mark.parametrize("executor", ["pool", "asyncio", "multihost"])
    def test_fully_cached_grid_skips_backend(
        self, short_video, lte_traces, tmp_path, executor
    ):
        store = SessionStore(tmp_path)
        seed_engine = ParallelSweepRunner(store=store)
        seeded = seed_engine.run_comparison(["RBA"], short_video, lte_traces[:4])
        warm = ParallelSweepRunner(
            executor=executor, store=SessionStore(tmp_path)
        )
        result = warm.run_comparison(["RBA"], short_video, lte_traces[:4])
        assert_sweeps_identical(seeded, result)
        assert warm.store.stats.hits == 4


class TestCLI:
    def test_sweep_worker_joins_manifest(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "store"
        recipe = SweepRecipe(
            schemes=("RBA",), videos=("ED-ffmpeg-h264",),
            network="lte", traces=2, seed=0,
        )
        write_manifest(store_dir, recipe_sweep_id(recipe), recipe)
        assert main(["sweep-worker", "--cache-dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "ED-ffmpeg-h264, 2 LTE traces:" in out
        assert "RBA" in out

    def test_sweep_worker_without_manifest_exits(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no sweep manifests"):
            main(["sweep-worker", "--cache-dir", str(tmp_path)])

    def test_compare_multihost_requires_cache_dir(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cache-dir"):
            main([
                "compare", "ED-ffmpeg-h264", "--traces", "2",
                "--schemes", "RBA", "--executor", "multihost",
            ])

    def test_cache_leases_lists_and_expires(self, tmp_path, capsys):
        from repro.cli import main

        board = LeaseBoard(tmp_path, "cafe", owner="host:9", ttl_s=1.0)
        board.claim("u00000-s0-0-4")
        backdate(board, "u00000-s0-0-4", age_s=60.0)
        assert main(["cache", "leases", "--cache-dir", str(tmp_path),
                     "--lease-ttl", "1"]) == 0
        out = capsys.readouterr().out
        assert "u00000-s0-0-4" in out
        assert "STALE" in out
        assert main(["cache", "leases", "--cache-dir", str(tmp_path),
                     "--lease-ttl", "1", "--expire"]) == 0
        assert "reclaimed u00000-s0-0-4" in capsys.readouterr().out
        assert board.list_leases() == []

    def test_cache_gc_dry_run_removes_nothing(self, short_video, lte_traces, tmp_path, capsys):
        from repro.cli import main

        store = SessionStore(tmp_path)
        engine = ParallelSweepRunner(store=store)
        engine.run_comparison(["RBA"], short_video, lte_traces[:4])
        before = store.describe()["entries"]
        assert before == 4
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-entries", "1", "--dry-run"]) == 0
        assert "would remove" in capsys.readouterr().out
        assert SessionStore(tmp_path).describe()["entries"] == before
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-entries", "1"]) == 0
        assert "removed" in capsys.readouterr().out
        assert SessionStore(tmp_path).describe()["entries"] == 1
