"""Tests for figure-data export."""

import csv
import json

import numpy as np
import pytest

from repro.experiments.export import (
    to_jsonable,
    write_cdf_csv,
    write_json,
    write_series_csv,
)


class TestCdfCsv:
    def test_long_format(self, tmp_path):
        cdfs = {
            "CAVA": (np.array([1.0, 2.0]), np.array([0.5, 1.0])),
            "MPC": (np.array([3.0]), np.array([1.0])),
        }
        path = tmp_path / "cdf.csv"
        write_cdf_csv(cdfs, path, value_label="rebuffer_s")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["series", "rebuffer_s", "cdf"]
        assert len(rows) == 4
        assert rows[1][0] == "CAVA"

    def test_real_figure_exports(self, tmp_path, ed_youtube_video):
        from repro.experiments.figures import fig3_quality_cdfs

        data = fig3_quality_cdfs(ed_youtube_video)
        path = tmp_path / "fig3.csv"
        write_cdf_csv({f"Q{q}": data["vmaf_phone"][q] for q in range(1, 5)}, path)
        rows = list(csv.reader(path.open()))
        assert len(rows) > ed_youtube_video.num_chunks / 2


class TestSeriesCsv:
    def test_columns(self, tmp_path):
        path = tmp_path / "sweep.csv"
        write_series_csv({"w": [2, 40], "q4": [60.0, 70.0]}, path)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["w", "q4"]
        assert rows[2] == ["40", "70"]

    def test_unequal_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unequal"):
            write_series_csv({"a": [1], "b": [1, 2]}, tmp_path / "x.csv")

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no columns"):
            write_series_csv({}, tmp_path / "x.csv")


class TestJson:
    def test_numpy_converted(self):
        data = {"a": np.array([1.0, 2.0]), "b": np.float64(3.5), "c": [np.int64(2)]}
        out = to_jsonable(data)
        assert out == {"a": [1.0, 2.0], "b": 3.5, "c": [2]}

    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "data.json"
        write_json({"x": np.arange(3), "nested": {"y": (1, 2)}}, path)
        loaded = json.loads(path.read_text())
        assert loaded == {"x": [0, 1, 2], "nested": {"y": [1, 2]}}
