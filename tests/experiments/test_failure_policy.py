"""Tests for the sweep engine's failure policy and fault injection.

The load-bearing properties:

- ``on_error="skip"`` drops exactly the failing unit; every other unit's
  metrics come back bit-identical to a clean run, with one
  :class:`FailedUnit` record per dropped unit;
- ``on_error="retry"`` converges to the full bit-identical result when
  the failure is transient (sessions are seeded, so a retry replays
  exactly);
- a broken pool (worker killed mid-unit) is respawned once and the
  sweep still completes bit-identically;
- failure telemetry is exact: two simultaneously failing units count as
  two failed sessions, because workers ship their telemetry snapshot
  back even when the unit fails;
- fault-injected sweeps are bit-identical at any worker count.

``REPRO_MP_START_METHOD`` (set by CI) forces the pool start method, so
this suite runs under both ``fork`` and ``spawn``.
"""

import os

import pytest

from repro.experiments.parallel import (
    FAULTS_INJECTED_METRIC,
    POOL_RESPAWNS_METRIC,
    RETRIES_METRIC,
    SESSIONS_FAILED_METRIC,
    SKIPPED_UNITS_METRIC,
    ParallelSweepRunner,
    SweepSpec,
    SweepWorkerError,
)
from repro.experiments.runner import FailedUnit, run_comparison, run_scheme_on_traces
from repro.faults.plan import FaultPlan, LatencyFault, OutageFault
from repro.telemetry.metrics import MetricsRegistry

#: CI exports this to exercise the suite under both fork and spawn.
MP_CONTEXT = os.environ.get("REPRO_MP_START_METHOD") or None


def make_engine(**kwargs):
    kwargs.setdefault("mp_context", MP_CONTEXT)
    kwargs.setdefault("min_parallel_sessions", 0)
    return ParallelSweepRunner(**kwargs)


class ExplodingEstimatorFactory:
    """Picklable estimator factory that always fails on named traces."""

    def __init__(self, *fail_on: str):
        self.fail_on = frozenset(fail_on)

    def __call__(self, trace):
        if trace.name in self.fail_on:
            raise RuntimeError("injected estimator failure")
        return None  # fall back to the default harmonic-mean estimator


class TransientEstimatorFactory:
    """Fails on one named trace until a flag file exists, then succeeds.

    The flag lives on the shared filesystem, so the first (failing)
    attempt is visible to whichever process runs the retry — works under
    fork and spawn alike.
    """

    def __init__(self, fail_on: str, flag_path: str):
        self.fail_on = fail_on
        self.flag_path = flag_path

    def __call__(self, trace):
        if trace.name == self.fail_on and not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as handle:
                handle.write("tripped")
            raise RuntimeError("transient estimator failure")
        return None


class PoolKillerEstimatorFactory:
    """Kills the worker process outright on first sight of one trace.

    ``os._exit`` bypasses every exception handler — the parent sees a
    :class:`BrokenProcessPool`, the worst failure mode a sweep can hit.
    The flag file (written *before* dying) makes the crash one-shot.
    """

    def __init__(self, fail_on: str, flag_path: str):
        self.fail_on = fail_on
        self.flag_path = flag_path

    def __call__(self, trace):
        if trace.name == self.fail_on and not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as handle:
                handle.write("killed")
            os._exit(1)
        return None


class AlwaysKillEstimatorFactory:
    """Kills the worker on *every* sight of one trace (never recovers)."""

    def __init__(self, fail_on: str):
        self.fail_on = fail_on

    def __call__(self, trace):
        if trace.name == self.fail_on:
            os._exit(1)
        return None


class TestSkipPolicy:
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_skip_drops_only_the_failing_unit(self, short_video, lte_traces, n_workers):
        traces = lte_traces[:6]
        clean = run_scheme_on_traces("RBA", short_video, traces)
        engine = make_engine(n_workers=n_workers, batch_size=2, on_error="skip")
        sweep = engine.run_scheme(
            "RBA",
            short_video,
            traces,
            estimator_factory=ExplodingEstimatorFactory(traces[3].name),
        )
        # unit [2:4] is gone; everything else is bit-identical
        assert not sweep.complete
        expected = clean.metrics[:2] + clean.metrics[4:]
        assert sweep.metrics == expected
        (failed,) = sweep.failures
        assert isinstance(failed, FailedUnit)
        assert (failed.start, failed.stop) == (2, 4)
        assert failed.num_traces == 2
        assert failed.scheme == "RBA"
        assert failed.trace_name == traces[3].name
        assert failed.attempts == 1
        assert "injected estimator failure" in failed.error
        assert failed.trace_name in str(failed)

    def test_skip_serial_drops_whole_spec_unit(self, short_video, lte_traces):
        # The serial path keeps its one-unit-per-spec granularity.
        engine = ParallelSweepRunner(n_workers=1, on_error="skip")
        sweep = engine.run_scheme(
            "RBA",
            short_video,
            lte_traces[:4],
            estimator_factory=ExplodingEstimatorFactory(lte_traces[2].name),
        )
        assert sweep.metrics == []
        (failed,) = sweep.failures
        assert (failed.start, failed.stop) == (0, 4)

    def test_one_crashing_spec_leaves_others_bit_identical(
        self, short_video, lte_traces
    ):
        # Acceptance shape: a multi-scheme sweep where one scheme's unit
        # crashes returns every other unit bit-identical to a clean run
        # plus exactly one FailedUnit.
        traces = lte_traces[:6]
        schemes = ["CAVA", "RBA", "BBA-1"]
        clean = run_comparison(schemes, short_video, traces)
        videos = {short_video.name: short_video}
        specs = [
            SweepSpec(scheme=scheme, video_key=short_video.name) for scheme in schemes
        ]
        specs[1] = SweepSpec(
            scheme="RBA",
            video_key=short_video.name,
            estimator_factory=ExplodingEstimatorFactory(traces[5].name),
        )
        engine = make_engine(n_workers=2, batch_size=3, on_error="skip")
        results = engine.run_specs(specs, videos, traces)
        assert results[0].metrics == clean["CAVA"].metrics
        assert results[2].metrics == clean["BBA-1"].metrics
        assert results[1].metrics == clean["RBA"].metrics[:3]
        all_failures = [f for r in results for f in r.failures]
        assert len(all_failures) == 1
        assert all_failures[0].scheme == "RBA"

    def test_raise_is_still_the_default(self, short_video, lte_traces):
        engine = make_engine(n_workers=2, batch_size=2)
        with pytest.raises(SweepWorkerError):
            engine.run_scheme(
                "RBA",
                short_video,
                lte_traces[:4],
                estimator_factory=ExplodingEstimatorFactory(lte_traces[1].name),
            )


class TestRetryPolicy:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_transient_failure_converges_bit_identical(
        self, short_video, lte_traces, tmp_path, n_workers
    ):
        traces = lte_traces[:6]
        clean = run_scheme_on_traces("RBA", short_video, traces)
        registry = MetricsRegistry()
        engine = make_engine(
            n_workers=n_workers, batch_size=2, on_error="retry", registry=registry
        )
        sweep = engine.run_scheme(
            "RBA",
            short_video,
            traces,
            estimator_factory=TransientEstimatorFactory(
                traces[3].name, str(tmp_path / "tripped.flag")
            ),
        )
        assert sweep.complete
        assert sweep.metrics == clean.metrics
        assert registry.value(RETRIES_METRIC) == 1
        # the failed first attempt is still counted — telemetry from a
        # failing unit is shipped back, not lost
        assert registry.value(SESSIONS_FAILED_METRIC) == 1
        assert registry.value(SKIPPED_UNITS_METRIC) == 0

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_exhausted_retries_become_failed_unit(
        self, short_video, lte_traces, n_workers
    ):
        registry = MetricsRegistry()
        engine = make_engine(
            n_workers=n_workers,
            batch_size=2,
            on_error="retry",
            max_retries=1,
            registry=registry,
        )
        sweep = engine.run_scheme(
            "RBA",
            short_video,
            lte_traces[:4],
            estimator_factory=ExplodingEstimatorFactory(lte_traces[1].name),
        )
        (failed,) = sweep.failures
        assert failed.attempts == 2  # initial try + one retry
        assert registry.value(RETRIES_METRIC) == 1
        assert registry.value(SKIPPED_UNITS_METRIC) == 1


class TestBrokenPoolRecovery:
    def test_pool_respawned_once_and_sweep_completes(
        self, short_video, lte_traces, tmp_path
    ):
        traces = lte_traces[:6]
        clean = run_scheme_on_traces("RBA", short_video, traces)
        registry = MetricsRegistry()
        engine = make_engine(n_workers=2, batch_size=2, registry=registry)
        sweep = engine.run_scheme(
            "RBA",
            short_video,
            traces,
            estimator_factory=PoolKillerEstimatorFactory(
                traces[3].name, str(tmp_path / "killed.flag")
            ),
        )
        # The killed unit (and any units in flight when the pool died)
        # were requeued onto a fresh pool; sessions are seeded, so the
        # result is still bit-identical and complete.
        assert sweep.complete
        assert sweep.metrics == clean.metrics
        assert registry.value(POOL_RESPAWNS_METRIC) == 1

    def test_persistent_crash_breaks_pool_twice_and_raises(
        self, short_video, lte_traces
    ):
        from concurrent.futures.process import BrokenProcessPool

        engine = make_engine(n_workers=2, batch_size=2, on_error="skip")
        with pytest.raises(BrokenProcessPool, match="twice"):
            engine.run_scheme(
                "RBA",
                short_video,
                lte_traces[:4],
                estimator_factory=AlwaysKillEstimatorFactory(lte_traces[1].name),
            )


class TestFailureTelemetry:
    def test_two_simultaneous_failures_both_counted(self, short_video, lte_traces):
        # Two units fail at the same time on a two-worker pool; the old
        # parent-side accounting counted "a sweep failed" once. Worker
        # snapshots carry the real number.
        traces = lte_traces[:4]
        registry = MetricsRegistry()
        engine = make_engine(
            n_workers=2, batch_size=2, on_error="skip", registry=registry
        )
        sweep = engine.run_scheme(
            "RBA",
            short_video,
            traces,
            estimator_factory=ExplodingEstimatorFactory(
                traces[0].name, traces[2].name
            ),
        )
        assert registry.value(SESSIONS_FAILED_METRIC) == 2
        assert registry.value(SKIPPED_UNITS_METRIC) == 2
        assert len(sweep.failures) == 2
        assert [f.start for f in sweep.failures] == [0, 2]
        assert sweep.metrics == []


class TestFaultInjection:
    PLAN = FaultPlan(
        (OutageFault(p=0.02, duration_intervals=4), LatencyFault(p=0.1, spike_s=0.5)),
        seed=7,
    )

    def test_faulted_sweep_identical_across_worker_counts(
        self, short_video, lte_traces
    ):
        traces = lte_traces[:6]
        results = {}
        for n_workers in (1, 2):
            engine = make_engine(n_workers=n_workers, fault_plan=self.PLAN)
            results[n_workers] = engine.run_comparison(
                ["CAVA", "RBA"], short_video, traces
            )
        for scheme in ("CAVA", "RBA"):
            assert results[1][scheme].metrics == results[2][scheme].metrics

    def test_faults_change_the_outcome(self, short_video, lte_traces):
        traces = lte_traces[:4]
        clean = run_scheme_on_traces("RBA", short_video, traces)
        plan = FaultPlan((OutageFault(p=0.1, duration_intervals=10),), seed=3)
        faulted = make_engine(n_workers=1, fault_plan=plan).run_scheme(
            "RBA", short_video, traces
        )
        assert faulted.metrics != clean.metrics

    def test_injected_events_counted_once(self, short_video, lte_traces):
        counts = {}
        for n_workers in (1, 2):
            registry = MetricsRegistry()
            engine = make_engine(
                n_workers=n_workers, fault_plan=self.PLAN, registry=registry
            )
            engine.run_scheme("RBA", short_video, lte_traces[:4])
            counts[n_workers] = registry.value(FAULTS_INJECTED_METRIC)
        assert counts[1] == counts[2] > 0

    def test_poison_plan_with_skip_policy_survives(self, short_video, lte_traces):
        # An outage on every interval floors the whole trace to zero;
        # TraceLink rejects a zero-bit trace, so every unit fails — and
        # under "skip" the sweep still returns instead of crashing.
        plan = FaultPlan((OutageFault(p=1.0, duration_intervals=1),), seed=0)
        engine = make_engine(
            n_workers=2, batch_size=2, fault_plan=plan, on_error="skip"
        )
        sweep = engine.run_scheme("RBA", short_video, lte_traces[:4])
        assert sweep.metrics == []
        assert len(sweep.failures) == 2
        assert all("zero bits" in f.error for f in sweep.failures)

    def test_run_comparison_routes_fault_policy_kwargs(self, short_video, lte_traces):
        results = run_comparison(
            ["RBA"],
            short_video,
            lte_traces[:2],
            fault_plan=FaultPlan((OutageFault(p=0.05),), seed=1),
            on_error="skip",
        )
        sweep = results["RBA"]
        assert sweep.complete  # mild plan: nothing should actually fail
        assert len(sweep.metrics) == 2


class TestPolicyValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            ParallelSweepRunner(on_error="explode")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            ParallelSweepRunner(max_retries=-1)
