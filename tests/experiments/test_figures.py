"""Tests for the per-figure reproduction functions.

These check structure and the paper's qualitative claims at a small
trace count; the benchmarks regenerate the full-size versions.
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig1_bitrate_profile,
    fig2_siti_by_quartile,
    fig3_quality_cdfs,
    fig4_myopic_vs_cava,
    fig7_inner_window_sweep,
    fig8_scheme_cdfs,
    fig9_quality_cdfs,
    fig10_ablation,
    fig11_dashjs_cdfs,
)


class TestFig1:
    def test_structure(self, ed_youtube_video):
        data = fig1_bitrate_profile(ed_youtube_video)
        assert data["bitrates_mbps"].shape[0] == 6
        assert data["track_averages_mbps"].shape == (6,)
        assert np.all(np.diff(data["track_averages_mbps"]) > 0)

    def test_bitrates_vary_within_track(self, ed_youtube_video):
        data = fig1_bitrate_profile(ed_youtube_video)
        top = data["bitrates_mbps"][5]
        assert top.max() > 1.3 * top.min()


class TestFig2:
    def test_quartile_separation(self, ed_youtube_video):
        data = fig2_siti_by_quartile(ed_youtube_video)
        above = data["fraction_above_thresholds"]
        assert above[4] > above[3] > above[1]
        assert above[4] > 0.5
        assert above[1] < 0.25

    def test_per_quartile_points_present(self, ed_youtube_video):
        data = fig2_siti_by_quartile(ed_youtube_video)
        for q in range(1, 5):
            assert data["per_quartile"][q]["si"].size > 10


class TestFig3:
    def test_all_metrics_present(self, ed_youtube_video):
        data = fig3_quality_cdfs(ed_youtube_video)
        assert set(data) == {"vmaf_tv", "vmaf_phone", "psnr", "ssim"}

    def test_q4_stochastically_worse(self, ed_youtube_video):
        """Q4's CDF sits left of Q1's: lower median quality."""
        data = fig3_quality_cdfs(ed_youtube_video)
        for metric in data:
            q1_values, _ = data[metric][1]
            q4_values, _ = data[metric][4]
            assert np.median(q4_values) < np.median(q1_values)


class TestFig4:
    def test_claim_cava_best_q4(self, ed_ffmpeg_video, one_lte_trace):
        data = fig4_myopic_vs_cava(ed_ffmpeg_video, one_lte_trace)
        assert set(data) == {"BBA-1", "RBA", "CAVA"}
        assert data["CAVA"]["q4_average"] > data["BBA-1"]["q4_average"]
        assert data["CAVA"]["q4_average"] > data["RBA"]["q4_average"]

    def test_series_lengths(self, ed_ffmpeg_video, one_lte_trace):
        data = fig4_myopic_vs_cava(ed_ffmpeg_video, one_lte_trace)
        for scheme in data.values():
            assert len(scheme["qualities"]) == ed_ffmpeg_video.num_chunks


class TestFig7:
    def test_sweep_structure(self, ed_ffmpeg_video, lte_traces):
        data = fig7_inner_window_sweep(
            ed_ffmpeg_video, lte_traces[:4], window_sizes_s=(2, 40, 160)
        )
        assert data["window_sizes_s"].tolist() == [2.0, 40.0, 160.0]
        assert data["q4_quality"]["mean"].shape == (3,)

    def test_claim_q4_improves_then_flattens(self, ed_ffmpeg_video, lte_traces):
        """Fig. 7: growing W first helps Q4 quality."""
        data = fig7_inner_window_sweep(
            ed_ffmpeg_video, lte_traces[:6], window_sizes_s=(2, 40)
        )
        q4 = data["q4_quality"]["mean"]
        assert q4[1] > q4[0]


class TestFig8And9:
    @pytest.fixture(scope="class")
    def fig8(self, request):
        video = request.getfixturevalue("ed_ffmpeg_video")
        traces = request.getfixturevalue("lte_traces")
        return fig8_scheme_cdfs(video, traces[:5], schemes=("CAVA", "RobustMPC"))

    def test_panels(self, fig8):
        assert set(fig8) == {
            "q4_quality", "low_quality_pct", "rebuffer_s",
            "quality_change", "relative_data_usage_mb",
        }
        assert set(fig8["q4_quality"]) == {"CAVA", "RobustMPC"}

    def test_cava_relative_usage_centred_at_zero(self, fig8):
        values, _ = fig8["relative_data_usage_mb"]["CAVA"]
        assert np.allclose(values, 0.0)

    def test_fig9_panels(self, ed_ffmpeg_video, lte_traces):
        data = fig9_quality_cdfs(ed_ffmpeg_video, lte_traces[:4], schemes=("CAVA", "RBA"))
        assert set(data) == {"q13_quality", "all_quality"}


class TestFig10:
    def test_ablation_claims(self, ed_ffmpeg_video, lte_traces):
        data = fig10_ablation(ed_ffmpeg_video, lte_traces[:6])
        # P2 raises Q4 quality relative to p1 on average.
        assert data["mean_q4_quality"]["CAVA-p12"] > data["mean_q4_quality"]["CAVA-p1"]
        # Quality deltas cover every Q4 chunk in every run.
        assert data["q4_quality_delta"]["CAVA-p12"].size > 0


class TestFig11:
    def test_structure_and_overhead(self, bbb_youtube_video, lte_traces):
        data = fig11_dashjs_cdfs(bbb_youtube_video, lte_traces[:3])
        assert set(data["cdfs"]["q4_quality"]) == {
            "CAVA", "BOLA-E (avg)", "BOLA-E (peak)", "BOLA-E (seg)",
        }
        assert all(v >= 0 for v in data["rule_overhead_s"].values())

    def test_claim_cava_beats_bola_on_q4(self, bbb_youtube_video, lte_traces):
        data = fig11_dashjs_cdfs(bbb_youtube_video, lte_traces[:5])
        q4 = data["cdfs"]["q4_quality"]
        cava_median = np.median(q4["CAVA"][0])
        for variant in ("BOLA-E (avg)", "BOLA-E (peak)", "BOLA-E (seg)"):
            assert cava_median > np.median(q4[variant][0]) - 1.0


class TestOuterWindowSweep:
    def test_structure_and_claims(self, ed_ffmpeg_video, lte_traces):
        from repro.experiments.figures import outer_window_sweep

        data = outer_window_sweep(
            ed_ffmpeg_video, lte_traces[:4], window_sizes_s=(10, 200)
        )
        assert data["window_sizes_s"].tolist() == [10.0, 200.0]
        assert data["rebuffer_mean_s"].shape == (2,)
        assert np.all(data["rebuffer_mean_s"] >= 0)
        assert np.all(data["q4_quality_mean"] > 0)
