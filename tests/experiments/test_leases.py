"""Lease-board and sweep-manifest semantics for multi-host sweeps.

The protocol's two load-bearing guarantees:

- **one winner per claim** — ``O_CREAT | O_EXCL`` makes the lease file
  an atomic mutex, so two hosts can never compute the same leased unit
  concurrently by accident;
- **exactly-once reclaim** — a stale lease is torn down through an
  atomic rename to a tombstone, so when several hosts notice the same
  dead peer, exactly one of them re-issues the unit.
"""

import os
import time

import pytest

from repro.experiments.leases import (
    LeaseBoard,
    SweepRecipe,
    latest_sweep_id,
    list_sweeps,
    read_manifest,
    recipe_sweep_id,
    write_manifest,
)


def backdate(board: LeaseBoard, unit: str, age_s: float) -> None:
    """Age a lease file as if its owner stopped heartbeating."""
    path = board._path(unit)
    past = time.time() - age_s
    os.utime(path, (past, past))


class TestClaims:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        board = LeaseBoard(tmp_path, "sweep", owner="a")
        rival = LeaseBoard(tmp_path, "sweep", owner="b")
        assert board.claim("u00000-s0-0-4")
        assert not rival.claim("u00000-s0-0-4")
        assert rival.claim("u00001-s0-4-8")  # other units unaffected
        board.release("u00000-s0-0-4")
        assert rival.claim("u00000-s0-0-4")

    def test_release_is_idempotent(self, tmp_path):
        board = LeaseBoard(tmp_path, "sweep")
        board.claim("u")
        board.release("u")
        board.release("u")  # releasing a non-held lease is a no-op

    def test_heartbeat_keeps_a_lease_fresh(self, tmp_path):
        board = LeaseBoard(tmp_path, "sweep", ttl_s=5.0)
        board.claim("u")
        backdate(board, "u", age_s=60.0)
        assert board.list_leases()[0].stale
        board.heartbeat("u")
        lease = board.list_leases()[0]
        assert not lease.stale
        assert lease.age_s < 5.0

    def test_list_leases_reports_owner_and_age(self, tmp_path):
        board = LeaseBoard(tmp_path, "sweep", owner="host-1:42")
        board.claim("u00000-s0-0-4")
        (lease,) = board.list_leases()
        assert lease.unit == "u00000-s0-0-4"
        assert lease.owner == "host-1:42"
        assert lease.age_s >= 0.0
        assert not lease.stale


class TestReclaim:
    def test_fresh_leases_are_not_reclaimed(self, tmp_path):
        board = LeaseBoard(tmp_path, "sweep", ttl_s=60.0)
        board.claim("u")
        assert LeaseBoard(tmp_path, "sweep", ttl_s=60.0).reclaim_stale() == []

    def test_stale_lease_reclaimed_and_reclaimable_once(self, tmp_path):
        board = LeaseBoard(tmp_path, "sweep", ttl_s=1.0)
        board.claim("u")
        backdate(board, "u", age_s=30.0)
        a = LeaseBoard(tmp_path, "sweep", ttl_s=1.0)
        b = LeaseBoard(tmp_path, "sweep", ttl_s=1.0)
        # Both peers see the same dead owner; the tombstone rename lets
        # exactly one of them win the reclaim.
        reclaimed = a.reclaim_stale() + b.reclaim_stale()
        assert reclaimed == ["u"]
        assert a.claim("u")  # the unit is claimable again

    def test_reclaimed_unit_not_double_issued_later(self, tmp_path):
        board = LeaseBoard(tmp_path, "sweep", ttl_s=1.0)
        board.claim("u")
        backdate(board, "u", age_s=30.0)
        assert board.reclaim_stale() == ["u"]
        assert board.reclaim_stale() == []


class TestManifests:
    def test_round_trip(self, tmp_path):
        recipe = SweepRecipe(
            schemes=("RBA", "CAVA"), videos=("short-test",),
            network="fcc", traces=8, seed=3, faults="outages:p=0.05,seed=7",
        )
        sweep_id = recipe_sweep_id(recipe)
        write_manifest(tmp_path, sweep_id, recipe)
        assert read_manifest(tmp_path, sweep_id) == recipe

    def test_recipe_id_is_content_addressed(self):
        base = SweepRecipe(schemes=("RBA",), videos=("v",))
        same = SweepRecipe(schemes=("RBA",), videos=("v",))
        other = SweepRecipe(schemes=("RBA",), videos=("v",), seed=1)
        assert recipe_sweep_id(base) == recipe_sweep_id(same)
        assert recipe_sweep_id(base) != recipe_sweep_id(other)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_manifest(tmp_path, "deadbeef")

    def test_list_and_latest(self, tmp_path):
        assert list_sweeps(tmp_path) == []
        assert latest_sweep_id(tmp_path) is None
        old = SweepRecipe(schemes=("RBA",), videos=("v",), seed=0)
        new = SweepRecipe(schemes=("RBA",), videos=("v",), seed=1)
        write_manifest(tmp_path, recipe_sweep_id(old), old)
        newest = tmp_path / "sweeps" / f"{recipe_sweep_id(old)}.json"
        past = time.time() - 100
        os.utime(newest, (past, past))
        write_manifest(tmp_path, recipe_sweep_id(new), new)
        ids = [sweep_id for sweep_id, _ in list_sweeps(tmp_path)]
        assert ids == [recipe_sweep_id(new), recipe_sweep_id(old)]
        assert latest_sweep_id(tmp_path) == recipe_sweep_id(new)
