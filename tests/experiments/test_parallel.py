"""Tests for the process-pool sweep engine.

The load-bearing property is §6-grade reproducibility: the parallel
engine must return results *bit-identical* to the serial runner, in the
same order, at any worker count — and failures inside a worker must name
the (scheme, video, trace) unit that died.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuning import CavaFactory, grid_search
from repro.experiments.artifacts import ArtifactCache
from repro.experiments.parallel import (
    BATCHES_METRIC,
    SESSIONS_COMPLETED_METRIC,
    SESSIONS_FAILED_METRIC,
    UNIT_SECONDS_METRIC,
    WORKERS_METRIC,
    ParallelSweepRunner,
    SweepSpec,
    SweepWorkerError,
    run_comparison_parallel,
)
from repro.experiments.runner import run_comparison, run_scheme_on_traces
from repro.telemetry.metrics import MetricsRegistry


SCHEMES = ["CAVA", "RBA"]


class ExplodingEstimatorFactory:
    """Picklable estimator factory that fails on one named trace."""

    def __init__(self, fail_on: str):
        self.fail_on = fail_on

    def __call__(self, trace):
        if trace.name == self.fail_on:
            raise RuntimeError("injected estimator failure")
        return None  # fall back to the default harmonic-mean estimator


def assert_sweeps_identical(serial, parallel):
    """Bitwise, order-sensitive equality of two comparison results."""
    assert list(serial) == list(parallel)
    for scheme in serial:
        a, b = serial[scheme], parallel[scheme]
        assert (a.scheme, a.video_name, a.network) == (b.scheme, b.video_name, b.network)
        assert len(a.metrics) == len(b.metrics)
        for ma, mb in zip(a.metrics, b.metrics):
            # SessionMetrics is a frozen dataclass of floats: == is
            # bitwise equality field by field.
            assert ma == mb


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_comparison_matches_serial_runner(self, short_video, lte_traces, n_workers):
        serial = run_comparison(SCHEMES, short_video, lte_traces)
        engine = ParallelSweepRunner(n_workers=n_workers, min_parallel_sessions=0)
        parallel = engine.run_comparison(SCHEMES, short_video, lte_traces)
        assert_sweeps_identical(serial, parallel)

    def test_trace_order_preserved(self, short_video, lte_traces):
        engine = ParallelSweepRunner(
            n_workers=2, batch_size=1, min_parallel_sessions=0
        )
        sweep = engine.run_scheme("RBA", short_video, lte_traces)
        assert [m.trace_name for m in sweep.metrics] == [t.name for t in lte_traces]

    def test_fcc_network_metric(self, short_video, fcc_traces):
        engine = ParallelSweepRunner(n_workers=2, min_parallel_sessions=0)
        sweep = engine.run_scheme("RBA", short_video, fcc_traces[:4], network="fcc")
        assert all(m.metric == "vmaf_tv" for m in sweep.metrics)

    def test_quality_scheme_over_pool(self, short_video, lte_traces):
        serial = run_scheme_on_traces("PANDA/CQ max-min", short_video, lte_traces[:4])
        engine = ParallelSweepRunner(n_workers=2, min_parallel_sessions=0)
        parallel = engine.run_scheme("PANDA/CQ max-min", short_video, lte_traces[:4])
        assert serial.metrics == parallel.metrics

    def test_run_comparison_n_workers_routes_to_engine(self, short_video, lte_traces):
        serial = run_comparison(SCHEMES, short_video, lte_traces[:6])
        routed = run_comparison(SCHEMES, short_video, lte_traces[:6], n_workers=2)
        assert_sweeps_identical(serial, routed)

    def test_convenience_wrapper(self, short_video, lte_traces):
        serial = run_comparison(SCHEMES, short_video, lte_traces[:6])
        parallel = run_comparison_parallel(
            SCHEMES, short_video, lte_traces[:6], n_workers=2
        )
        assert_sweeps_identical(serial, parallel)

    def test_spawn_context_matches_serial(self, short_video, lte_traces):
        # The initializer must carry all worker state explicitly: under
        # "spawn" nothing is inherited from the parent process.
        serial = run_scheme_on_traces("RBA", short_video, lte_traces[:4])
        engine = ParallelSweepRunner(
            n_workers=2, mp_context="spawn", min_parallel_sessions=0
        )
        parallel = engine.run_scheme("RBA", short_video, lte_traces[:4])
        assert serial.metrics == parallel.metrics


class TestGrid:
    def test_run_grid_keys_and_equivalence(self, short_video, lte_traces):
        engine = ParallelSweepRunner(n_workers=2, min_parallel_sessions=0)
        grid = engine.run_grid(["RBA"], [short_video], lte_traces[:4])
        assert set(grid) == {("RBA", short_video.name)}
        serial = run_scheme_on_traces("RBA", short_video, lte_traces[:4])
        assert grid[("RBA", short_video.name)].metrics == serial.metrics

    def test_duplicate_video_names_rejected(self, short_video, lte_traces):
        engine = ParallelSweepRunner(n_workers=1)
        with pytest.raises(ValueError, match="unique"):
            engine.run_grid(["RBA"], [short_video, short_video], lte_traces[:2])

    def test_unknown_video_key_rejected(self, short_video, lte_traces):
        engine = ParallelSweepRunner(n_workers=1)
        spec = SweepSpec(scheme="RBA", video_key="missing")
        with pytest.raises(KeyError, match="missing"):
            engine.run_specs([spec], {short_video.name: short_video}, lte_traces[:2])

    def test_empty_specs(self, short_video, lte_traces):
        assert ParallelSweepRunner().run_specs([], {}, lte_traces[:2]) == []

    def test_empty_traces_rejected(self, short_video):
        engine = ParallelSweepRunner(n_workers=1)
        spec = SweepSpec(scheme="RBA", video_key=short_video.name)
        with pytest.raises(ValueError, match="trace"):
            engine.run_specs([spec], {short_video.name: short_video}, [])


class TestFailureIdentification:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_worker_exception_names_the_unit(self, short_video, lte_traces, n_workers):
        failing = lte_traces[3].name
        engine = ParallelSweepRunner(
            n_workers=n_workers, batch_size=2, min_parallel_sessions=0
        )
        with pytest.raises(SweepWorkerError) as excinfo:
            engine.run_scheme(
                "CAVA",
                short_video,
                lte_traces[:6],
                estimator_factory=ExplodingEstimatorFactory(failing),
            )
        error = excinfo.value
        assert error.spec_label == "CAVA"
        assert error.video_name == short_video.name
        assert error.trace_name == failing
        assert "injected estimator failure" in error.cause
        # the identifying triple must survive str() for log readability
        assert failing in str(error)

    def test_unknown_scheme_identified(self, short_video, lte_traces):
        engine = ParallelSweepRunner(n_workers=1)
        with pytest.raises(SweepWorkerError, match="no-such-scheme"):
            engine.run_scheme("no-such-scheme", short_video, lte_traces[:2])


class TestEngineConfig:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelSweepRunner(n_workers=0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            ParallelSweepRunner(batch_size=0)

    def test_small_grid_falls_back_to_serial(self, short_video, lte_traces, monkeypatch):
        # A grid below min_parallel_sessions must never build a pool.
        import repro.experiments.parallel as parallel_mod

        def forbid_pool(*args, **kwargs):
            raise AssertionError("pool must not be created for a tiny grid")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", forbid_pool)
        engine = ParallelSweepRunner(n_workers=4, min_parallel_sessions=1000)
        sweep = engine.run_scheme("RBA", short_video, lte_traces[:2])
        assert len(sweep.metrics) == 2

    @given(
        num_traces=st.integers(min_value=1, max_value=500),
        workers=st.integers(min_value=1, max_value=32),
        batch_size=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    )
    @settings(max_examples=200, deadline=None)
    def test_batch_bounds_partition_the_trace_set(self, num_traces, workers, batch_size):
        """Batches tile [0, n) contiguously, in order, without overlap."""
        engine = ParallelSweepRunner(batch_size=batch_size)
        bounds = engine._batch_bounds(num_traces, workers)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == num_traces
        for (start, stop), (next_start, _) in zip(bounds, bounds[1:]):
            assert stop == next_start
        assert all(start < stop for start, stop in bounds)
        if batch_size is not None:
            assert all(stop - start <= batch_size for start, stop in bounds)


class TestTuningIntegration:
    def test_grid_search_parallel_matches_serial(self, short_video, lte_traces):
        grid = {"inner_window_s": (20.0, 40.0)}
        serial = grid_search(grid, short_video, lte_traces[:4])
        parallel = grid_search(grid, short_video, lte_traces[:4], n_workers=2)
        assert [r.overrides for r in serial] == [r.overrides for r in parallel]
        assert [r.score for r in serial] == [r.score for r in parallel]

    def test_cava_factory_is_picklable(self):
        import pickle

        from repro.core.config import CavaConfig

        factory = CavaFactory(CavaConfig(inner_window_s=20.0))
        clone = pickle.loads(pickle.dumps(factory))
        assert clone().config.inner_window_s == 20.0


class TestArtifactCache:
    def test_artifacts_built_once_per_source(self, short_video, lte_traces):
        cache = ArtifactCache()
        m1 = cache.manifest(short_video)
        m2 = cache.manifest(short_video)
        assert m1 is m2
        c1 = cache.classifier(short_video)
        assert c1 is cache.classifier(short_video)
        l1 = cache.link(lte_traces[0])
        assert l1 is cache.link(lte_traces[0])
        assert cache.stats.misses == 3
        assert cache.stats.hits == 3

    def test_quality_manifest_cached_separately(self, short_video):
        cache = ArtifactCache()
        plain = cache.manifest(short_video, include_quality=False)
        quality = cache.manifest(short_video, include_quality=True)
        assert plain is not quality
        assert not plain.has_quality and quality.has_quality

    def test_distinct_traces_not_aliased(self, lte_traces):
        cache = ArtifactCache()
        assert cache.link(lte_traces[0]) is not cache.link(lte_traces[1])

    def test_clear_forgets(self, short_video):
        cache = ArtifactCache()
        first = cache.manifest(short_video)
        cache.clear()
        assert cache.manifest(short_video) is not first

    def test_lru_evicts_past_cap(self, lte_traces):
        cache = ArtifactCache(max_entries=2)
        first = cache.link(lte_traces[0])
        cache.link(lte_traces[1])
        cache.link(lte_traces[2])  # evicts traces[0], the LRU entry
        assert cache.stats.evictions == 1
        assert cache.link(lte_traces[1]) is not None  # still cached
        assert cache.stats.hits == 1
        assert cache.link(lte_traces[0]) is not first  # rebuilt after eviction
        assert cache.stats.misses == 4

    def test_lookup_refreshes_recency(self, lte_traces):
        cache = ArtifactCache(max_entries=2)
        first = cache.link(lte_traces[0])
        cache.link(lte_traces[1])
        assert cache.link(lte_traces[0]) is first  # refresh: [1] is now LRU
        cache.link(lte_traces[2])  # evicts traces[1], not traces[0]
        assert cache.link(lte_traces[0]) is first
        assert cache.stats.evictions == 1

    def test_default_cap_never_evicts_a_sweep(self, short_video, lte_traces):
        cache = ArtifactCache()
        cache.manifest(short_video)
        cache.classifier(short_video)
        for trace in lte_traces:
            cache.link(trace)
        assert cache.stats.evictions == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)


class TestSweepTelemetry:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_session_count_across_pool(self, short_video, lte_traces, n_workers):
        registry = MetricsRegistry()
        engine = ParallelSweepRunner(
            n_workers=n_workers, min_parallel_sessions=0, registry=registry
        )
        engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        assert registry.counter(SESSIONS_COMPLETED_METRIC).value == len(SCHEMES) * 6
        assert registry.gauge(WORKERS_METRIC).value == n_workers
        hist = registry.get(UNIT_SECONDS_METRIC)
        assert hist.count == registry.counter(BATCHES_METRIC).value

    def test_serial_and_pool_report_same_invariants(self, short_video, lte_traces):
        # Which worker builds which artifact is scheduling-dependent, so
        # the hit/miss *split* may vary across runs — but the totals are
        # invariant: every session does the same three cache lookups.
        from repro.experiments.parallel import (
            CACHE_HITS_METRIC,
            CACHE_MISSES_METRIC,
        )

        snapshots = {}
        for n_workers in (1, 2):
            registry = MetricsRegistry()
            engine = ParallelSweepRunner(
                n_workers=n_workers,
                batch_size=3,
                min_parallel_sessions=0,
                registry=registry,
            )
            engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
            snapshots[n_workers] = registry.snapshot()
        serial, pooled = snapshots[1], snapshots[2]
        # The pool additionally reports the shm data plane (block/bytes
        # gauges, attached-worker count); every serial metric must still
        # appear pool-side with the same unit-level invariants.
        assert set(serial) <= set(pooled)
        sessions = len(SCHEMES) * 6
        # serial runs one unit per spec; the pool splits 6 traces into
        # ceil(6/3)=2 batches per spec
        serial_units, pooled_units = len(SCHEMES), len(SCHEMES) * 2
        assert serial[BATCHES_METRIC]["value"] == serial_units
        assert pooled[BATCHES_METRIC]["value"] == pooled_units
        # Both schemes run on the lockstep batch engine, which looks up
        # the link once per session but the manifest and classifier once
        # per *unit* (the scalar loop would do all three per session).
        for snap, units in ((serial, serial_units), (pooled, pooled_units)):
            assert snap[SESSIONS_COMPLETED_METRIC]["value"] == sessions
            lookups = snap[CACHE_HITS_METRIC]["value"] + snap[CACHE_MISSES_METRIC]["value"]
            assert lookups == sessions + 2 * units

    def test_cache_counters_reflect_worker_caches(self, short_video, lte_traces):
        registry = MetricsRegistry()
        engine = ParallelSweepRunner(n_workers=1, registry=registry)
        engine.run_scheme("RBA", short_video, lte_traces[:4])
        from repro.experiments.parallel import (
            CACHE_HITS_METRIC,
            CACHE_MISSES_METRIC,
        )

        # One manifest + one classifier + 4 links built, every lookup a
        # miss: the batch engine touches each artifact exactly once per
        # unit (the scalar loop would re-hit the manifest/classifier per
        # session).
        assert registry.counter(CACHE_MISSES_METRIC).value == 6
        assert registry.counter(CACHE_HITS_METRIC).value == 0

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_failures_counted_once(self, short_video, lte_traces, n_workers):
        registry = MetricsRegistry()
        engine = ParallelSweepRunner(
            n_workers=n_workers,
            batch_size=2,
            min_parallel_sessions=0,
            registry=registry,
        )
        with pytest.raises(SweepWorkerError):
            engine.run_scheme(
                "RBA",
                short_video,
                lte_traces[:4],
                estimator_factory=ExplodingEstimatorFactory(lte_traces[3].name),
            )
        assert registry.counter(SESSIONS_FAILED_METRIC).value == 1

    def test_no_registry_no_metrics(self, short_video, lte_traces):
        engine = ParallelSweepRunner(n_workers=1)
        engine.run_scheme("RBA", short_video, lte_traces[:2])
        assert engine.registry is None


class TestSweepResultMemoization:
    def test_values_cached_and_read_only(self, short_video, lte_traces):
        sweep = run_scheme_on_traces("RBA", short_video, lte_traces[:3])
        first = sweep.values("rebuffer_s")
        assert sweep.values("rebuffer_s") is first
        assert not first.flags.writeable
        assert sweep.mean("rebuffer_s") == pytest.approx(float(first.mean()))
