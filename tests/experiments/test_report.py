"""Tests for the plain-text report renderer."""

from repro.experiments.report import (
    format_comparison_rows,
    format_delta,
    format_percent,
    render_table,
)
from repro.experiments.tables import ComparisonRow


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        assert lines[0].startswith("a")

    def test_non_string_cells(self):
        text = render_table(["n"], [[42]])
        assert "42" in text


class TestFormatting:
    def test_delta_arrows(self):
        assert format_delta(4.2) == "↑4.2"
        assert format_delta(-3.0) == "↓3.0"

    def test_percent_arrows(self):
        assert format_percent(-0.62) == "↓62%"
        assert format_percent(0.05) == "↑5%"

    def test_percent_infinity(self):
        assert format_percent(float("inf")) == "↑inf"

    def test_comparison_rows_render(self):
        rows = [ComparisonRow("ED", "lte", "RobustMPC", 9.5, -0.61, -0.62, -0.48, -0.11)]
        text = format_comparison_rows(rows)
        assert "RobustMPC" in text
        assert "↑9.5" in text
        assert "↓62%" in text
