"""Tests for the experiment sweep runner."""

import pytest

from repro.experiments.runner import (
    aggregate,
    run_comparison,
    run_scheme_on_traces,
)
from repro.network.estimator import HarmonicMeanEstimator


class TestRunSchemeOnTraces:
    def test_one_result_per_trace(self, short_video, lte_traces):
        sweep = run_scheme_on_traces("CAVA", short_video, lte_traces[:4])
        assert len(sweep.metrics) == 4
        assert sweep.scheme == "CAVA"
        assert sweep.network == "lte"

    def test_metric_follows_network(self, short_video, lte_traces, fcc_traces):
        lte_sweep = run_scheme_on_traces("CAVA", short_video, lte_traces[:2], "lte")
        fcc_sweep = run_scheme_on_traces("CAVA", short_video, fcc_traces[:2], "fcc")
        assert lte_sweep.metrics[0].metric == "vmaf_phone"
        assert fcc_sweep.metrics[0].metric == "vmaf_tv"

    def test_values_and_mean(self, short_video, lte_traces):
        sweep = run_scheme_on_traces("CAVA", short_video, lte_traces[:4])
        values = sweep.values("rebuffer_s")
        assert values.shape == (4,)
        assert sweep.mean("rebuffer_s") == pytest.approx(float(values.mean()))

    def test_panda_gets_quality_manifest(self, short_video, lte_traces):
        sweep = run_scheme_on_traces("PANDA/CQ max-min", short_video, lte_traces[:2])
        assert len(sweep.metrics) == 2

    def test_empty_traces_rejected(self, short_video):
        with pytest.raises(ValueError, match="trace"):
            run_scheme_on_traces("CAVA", short_video, [])

    def test_custom_estimator_factory(self, short_video, lte_traces):
        calls = []

        def factory(trace):
            calls.append(trace.name)
            return HarmonicMeanEstimator(window=3)

        run_scheme_on_traces(
            "CAVA", short_video, lte_traces[:3], estimator_factory=factory
        )
        assert len(calls) == 3

    def test_algorithm_factory_override(self, short_video, lte_traces):
        from repro.core.cava import cava_p1

        sweep = run_scheme_on_traces(
            "CAVA", short_video, lte_traces[:2], algorithm_factory=cava_p1
        )
        assert sweep.metrics[0].scheme == "CAVA-p1"


class TestRunComparison:
    def test_all_schemes_run(self, short_video, lte_traces):
        results = run_comparison(["CAVA", "RBA"], short_video, lte_traces[:3])
        assert set(results) == {"CAVA", "RBA"}
        assert all(len(sweep.metrics) == 3 for sweep in results.values())

    def test_aggregate(self, short_video, lte_traces):
        results = run_comparison(["CAVA", "RBA"], short_video, lte_traces[:3])
        means = aggregate(results, "data_usage_mb")
        assert set(means) == {"CAVA", "RBA"}
        assert all(v > 0 for v in means.values())
