"""Properties of the backend-agnostic sweep scheduler.

The distributed lease protocol leans on exact partitioning guarantees:
``contiguous_runs`` must cover precisely the missing trace indices, and
``batch_bounds`` must tile ``[0, num_traces)`` without gaps or overlaps
— otherwise two hosts could compute the same session twice (benign but
wasteful) or, worse, a session could fall through uncovered (a wedged
sweep). These tests pin those guarantees with hypothesis.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scheduler import (
    SweepScheduler,
    SweepSpec,
    WorkUnit,
    batch_bounds,
    contiguous_runs,
    sweep_grid_id,
)
from repro.experiments.store import UncacheableValueError


indices_strategy = st.lists(
    st.integers(min_value=0, max_value=400), unique=True, max_size=60
).map(sorted)


class TestContiguousRuns:
    @given(indices=indices_strategy)
    @settings(max_examples=200, deadline=None)
    def test_runs_cover_exactly_the_indices(self, indices):
        runs = contiguous_runs(indices)
        covered = [i for start, stop in runs for i in range(start, stop)]
        assert covered == list(indices)

    @given(indices=indices_strategy)
    @settings(max_examples=200, deadline=None)
    def test_runs_disjoint_ascending_and_maximal(self, indices):
        runs = contiguous_runs(indices)
        present = set(indices)
        for start, stop in runs:
            assert start < stop
        for (_, stop_a), (start_b, _) in zip(runs, runs[1:]):
            # Ascending and disjoint; a touching pair (stop_a ==
            # start_b) would mean the run was not maximal.
            assert stop_a < start_b
        for start, stop in runs:
            # Maximal: the elements flanking a run are absent.
            assert start - 1 not in present
            assert stop not in present

    def test_empty_and_singleton(self):
        assert contiguous_runs([]) == []
        assert contiguous_runs([7]) == [(7, 8)]

    def test_mixed_runs(self):
        assert contiguous_runs([0, 1, 2, 5, 6, 9]) == [(0, 3), (5, 7), (9, 10)]


class TestBatchBounds:
    @given(
        num_traces=st.integers(min_value=1, max_value=300),
        workers=st.integers(min_value=1, max_value=32),
        cost=st.floats(min_value=0.01, max_value=50.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounds_tile_the_trace_range(self, num_traces, workers, cost):
        bounds = batch_bounds(num_traces, workers, cost)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == num_traces
        for start, stop in bounds:
            assert start < stop
        for (_, stop_a), (start_b, _) in zip(bounds, bounds[1:]):
            assert stop_a == start_b

    @given(
        num_traces=st.integers(min_value=1, max_value=300),
        workers=st.integers(min_value=1, max_value=32),
        batch_size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_explicit_batch_size_wins(self, num_traces, workers, batch_size):
        bounds = batch_bounds(num_traces, workers, batch_size=batch_size)
        sizes = [stop - start for start, stop in bounds]
        assert all(size == batch_size for size in sizes[:-1])
        assert 0 < sizes[-1] <= batch_size

    def test_costlier_sessions_get_smaller_batches(self):
        cheap = batch_bounds(200, 1, cost_per_session=0.15)
        costly = batch_bounds(200, 1, cost_per_session=12.0)
        assert max(b - a for a, b in costly) <= max(b - a for a, b in cheap)


class TestSweepGridId:
    def test_deterministic_and_content_sensitive(self):
        keys = [["k1", "k2"], ["k3"]]
        assert sweep_grid_id(keys) == sweep_grid_id([list(k) for k in keys])
        assert sweep_grid_id(keys) != sweep_grid_id([["k1", "k2"], ["k4"]])
        # Spec boundaries matter: the same flat keys split differently
        # are a different grid.
        assert sweep_grid_id([["k1"], ["k2", "k3"]]) != sweep_grid_id(keys)

    def test_uncacheable_spec_rejected(self):
        with pytest.raises(UncacheableValueError):
            sweep_grid_id([["k1"], None])


class TestGridUnits:
    def test_plan_grid_units_ignores_store_snapshot(self, lte_traces):
        # Every host must derive the same unit catalogue (hence the same
        # lease names) regardless of what its store already holds.
        specs = [SweepSpec(scheme="RBA", video_key="v", network="lte")]
        scheduler = SweepScheduler(store=None)
        a = scheduler.plan_grid_units(specs, {None: lte_traces}, 8)
        b = scheduler.plan_grid_units(specs, {None: list(lte_traces)}, 8)
        assert [u.name for u in a] == [u.name for u in b]
        covered = [i for u in a for i in range(u.start, u.stop)]
        assert covered == list(range(len(lte_traces)))

    def test_unit_names_are_unique_and_stable(self):
        unit = WorkUnit(3, 1, 4, 12)
        assert unit.name == "u00003-s1-4-12"
