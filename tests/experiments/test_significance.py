"""Tests for paired scheme comparison statistics."""

import numpy as np
import pytest

from repro.experiments.runner import run_comparison
from repro.experiments.significance import (
    compare_schemes,
    paired_bootstrap,
    sign_test_pvalue,
)


class TestPairedBootstrap:
    def test_ci_contains_mean_for_clear_signal(self):
        rng = np.random.default_rng(0)
        diffs = rng.normal(5.0, 1.0, size=50)
        low, high = paired_bootstrap(diffs, seed=1)
        assert low < 5.0 < high
        assert low > 0.0  # clearly significant

    def test_zero_signal_straddles_zero(self):
        rng = np.random.default_rng(0)
        diffs = rng.normal(0.0, 1.0, size=200)
        low, high = paired_bootstrap(diffs, seed=1)
        assert low < 0.0 < high

    def test_deterministic(self):
        diffs = [1.0, 2.0, -0.5, 3.0]
        assert paired_bootstrap(diffs, seed=4) == paired_bootstrap(diffs, seed=4)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap([1.0])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap([1.0, 2.0], confidence=0.3)


class TestSignTest:
    def test_all_positive_small_p(self):
        assert sign_test_pvalue([1.0] * 10) < 0.01

    def test_balanced_large_p(self):
        assert sign_test_pvalue([1, -1, 1, -1, 1, -1]) > 0.5

    def test_ties_dropped(self):
        assert sign_test_pvalue([0.0, 0.0, 0.0]) == 1.0

    def test_symmetry(self):
        diffs = [1.0, 2.0, 3.0, -1.0]
        assert sign_test_pvalue(diffs) == pytest.approx(
            sign_test_pvalue([-d for d in diffs])
        )


class TestCompareSchemes:
    @pytest.fixture(scope="class")
    def sweeps(self, request):
        video = request.getfixturevalue("ed_ffmpeg_video")
        traces = request.getfixturevalue("lte_traces")
        return run_comparison(["CAVA", "RobustMPC"], video, traces, "lte")

    def test_q4_quality_significantly_higher(self, sweeps):
        result = compare_schemes(sweeps["CAVA"], sweeps["RobustMPC"], "q4_quality_mean")
        assert result.mean_difference > 0
        assert result.num_pairs == len(sweeps["CAVA"].metrics)
        assert result.significant  # holds even at 12 traces
        assert "CAVA vs RobustMPC" in result.describe()

    def test_quality_change_significantly_lower(self, sweeps):
        result = compare_schemes(
            sweeps["CAVA"], sweeps["RobustMPC"], "quality_change_per_chunk"
        )
        assert result.mean_difference < 0
        assert result.ci_high < 0

    def test_mismatched_sweeps_rejected(self, sweeps, short_video, lte_traces):
        from repro.experiments.runner import run_scheme_on_traces

        other = run_scheme_on_traces("CAVA", short_video, lte_traces[:3])
        with pytest.raises(ValueError, match="trace"):
            compare_schemes(sweeps["CAVA"], other, "rebuffer_s")
