"""Cross-process span stitching and telemetry-merge tests.

The observability-plane contracts, pinned at workers {1, 2} under both
fork and spawn start methods:

- attaching a tracer / registry / progress board never changes results
  (bit-identity with the plain serial runner);
- worker-recorded spans ship back with unit results and stitch into one
  deterministic timeline (scheduler track + per-worker tracks, nesting
  intact, tagged with unit order and attempt);
- spans and metrics snapshots survive *failed* units — a dropped
  :class:`FailedUnit` still contributes its unit.run span (with error
  meta) and its telemetry.
"""

import multiprocessing

import pytest

from repro.experiments.parallel import (
    SESSIONS_COMPLETED_METRIC,
    SESSIONS_FAILED_METRIC,
    ParallelSweepRunner,
    SweepSpec,
)
from repro.experiments.runner import run_comparison
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.pipeline import (
    SPAN_STORE_PARTITION,
    SPAN_SWEEP_DRAIN,
    SPAN_SWEEP_MERGE,
    SPAN_SWEEP_PLAN,
    SPAN_UNIT_RUN,
    ProgressBoard,
    chrome_trace,
    load_progress,
)
from repro.telemetry.spans import SpanTracer

SCHEMES = ["CAVA", "RBA"]

START_METHODS = ["fork", "spawn"]
if "fork" not in multiprocessing.get_all_start_methods():  # pragma: no cover
    START_METHODS = ["spawn"]


class ExplodingEstimatorFactory:
    """Picklable estimator factory that fails on one named trace."""

    def __init__(self, fail_on: str):
        self.fail_on = fail_on

    def __call__(self, trace):
        if trace.name == self.fail_on:
            raise RuntimeError("injected estimator failure")
        return None


def _engine(n_workers, mp_context=None, **kwargs):
    return ParallelSweepRunner(
        n_workers=n_workers,
        mp_context=mp_context,
        min_parallel_sessions=0,
        tracer=SpanTracer("scheduler"),
        **kwargs,
    )


class TestBitIdentityWithTracing:
    @pytest.mark.parametrize("n_workers", [1, 2])
    @pytest.mark.parametrize("mp_context", START_METHODS)
    def test_results_identical_with_tracer(
        self, short_video, lte_traces, n_workers, mp_context
    ):
        plain = run_comparison(SCHEMES, short_video, lte_traces[:6])
        engine = _engine(n_workers, mp_context)
        traced = engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        for scheme in SCHEMES:
            assert traced[scheme].metrics == plain[scheme].metrics
        assert engine.tracer.spans  # and the timeline actually recorded

    def test_progress_board_does_not_change_results(
        self, short_video, lte_traces, tmp_path
    ):
        plain = run_comparison(SCHEMES, short_video, lte_traces[:6])
        board = ProgressBoard(tmp_path, min_interval_s=0.0)
        engine = ParallelSweepRunner(
            n_workers=2, min_parallel_sessions=0, progress=board
        )
        tracked = engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        for scheme in SCHEMES:
            assert tracked[scheme].metrics == plain[scheme].metrics
        progress = load_progress(tmp_path)
        assert progress["phase"] == "merged"
        assert progress["completed_sessions"] == 12
        assert set(progress["schemes"]) == set(SCHEMES)


class TestStitchedTimeline:
    @pytest.mark.parametrize("mp_context", START_METHODS)
    def test_pool_timeline_has_scheduler_and_worker_tracks(
        self, short_video, lte_traces, mp_context
    ):
        engine = _engine(2, mp_context)
        engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        spans = engine.tracer.spans
        names = {s["name"] for s in spans}
        for expected in (
            SPAN_SWEEP_PLAN,
            SPAN_STORE_PARTITION,
            SPAN_SWEEP_DRAIN,
            SPAN_SWEEP_MERGE,
            SPAN_UNIT_RUN,
        ):
            assert expected in names, f"missing {expected} span"
        tracks = {s["track"] for s in spans}
        assert "scheduler" in tracks
        assert any(t.startswith("worker-") for t in tracks)
        # Every absorbed worker span carries its unit order and attempt.
        unit_spans = [s for s in spans if s["name"] == SPAN_UNIT_RUN]
        assert unit_spans
        assert all(
            "unit" in s["meta"] and s["meta"]["attempt"] >= 1 for s in unit_spans
        )

    def test_serial_timeline_single_track_same_shape(
        self, short_video, lte_traces
    ):
        engine = _engine(1)
        engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        spans = engine.tracer.spans
        assert {s["track"] for s in spans} == {"scheduler"}
        assert SPAN_UNIT_RUN in {s["name"] for s in spans}

    def test_stitching_is_deterministic(self, short_video, lte_traces):
        def run_once():
            engine = _engine(2, batch_size=2)
            engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
            return [
                (s["name"], s["meta"].get("unit"), s["meta"].get("scheme"))
                for s in engine.tracer.spans
            ]

        first, second = run_once(), run_once()
        # Span *identity and order* repeat run to run (durations differ).
        assert first == second

    def test_chrome_export_of_stitched_timeline(self, short_video, lte_traces):
        engine = _engine(2)
        engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        trace = chrome_trace(engine.tracer.spans)
        lanes = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert "scheduler" in lanes and len(lanes) >= 2


class TestFailedUnitTelemetry:
    @pytest.mark.parametrize("n_workers", [1, 2])
    @pytest.mark.parametrize("mp_context", START_METHODS)
    def test_spans_survive_failed_units(
        self, short_video, lte_traces, n_workers, mp_context
    ):
        failing = lte_traces[2].name
        registry = MetricsRegistry()
        engine = _engine(
            n_workers,
            mp_context if n_workers > 1 else None,
            registry=registry,
            on_error="skip",
        )
        spec = SweepSpec(
            scheme="RBA",
            video_key=short_video.name,
            estimator_factory=ExplodingEstimatorFactory(failing),
        )
        [result] = engine.run_specs(
            [spec], {short_video.name: short_video}, lte_traces[:6]
        )
        assert result.failures  # the unit really was dropped
        spans = engine.tracer.spans
        unit_spans = [s for s in spans if s["name"] == SPAN_UNIT_RUN]
        assert unit_spans  # spans shipped back despite the failure
        assert any(
            s["meta"].get("error") == "SweepWorkerError" for s in unit_spans
        )
        # The failed unit's telemetry snapshot merged too.
        assert registry.value(SESSIONS_FAILED_METRIC) >= 1
        assert registry.value(SESSIONS_COMPLETED_METRIC) >= 1

    @pytest.mark.parametrize("mp_context", START_METHODS)
    def test_registry_merge_matches_serial_counts(
        self, short_video, lte_traces, mp_context
    ):
        def counts(n_workers, ctx):
            registry = MetricsRegistry()
            engine = ParallelSweepRunner(
                n_workers=n_workers,
                mp_context=ctx,
                min_parallel_sessions=0,
                registry=registry,
            )
            engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
            return registry.value(SESSIONS_COMPLETED_METRIC)

        assert counts(1, None) == counts(2, mp_context) == 12
