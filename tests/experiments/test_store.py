"""Tests for the content-addressed session store.

The load-bearing properties: every input that can influence a session's
metrics changes its key (digest invalidation); equal inputs produce the
same key in any process under either start method (content addressing,
no salted ``hash()``/``id()``); a warm re-run is *bit-identical* to the
cold computation it replaced, serial or pooled; and a damaged store
degrades to a cold one — corrupt entries read as misses, never as data.
"""

import json
import multiprocessing

import numpy as np
import pytest

from repro.core.config import CavaConfig
from repro.core.tuning import CavaFactory, grid_search
from repro.experiments.parallel import ParallelSweepRunner, SweepSpec
from repro.experiments.runner import run_comparison, run_scheme_on_traces
from repro.experiments.store import (
    SessionStore,
    UncacheableValueError,
    fingerprint,
)
from repro.faults.plan import FaultPlan, OutageFault
from repro.network.traces import NetworkTrace
from repro.player.session import SessionConfig
from repro.telemetry.metrics import STORE_UNCACHEABLE_METRIC, MetricsRegistry

SCHEMES = ["CAVA", "RBA"]


def assert_sweeps_identical(expected, actual):
    """Bitwise, order-sensitive equality of two comparison results."""
    assert list(expected) == list(actual)
    for scheme in expected:
        a, b = expected[scheme], actual[scheme]
        assert (a.scheme, a.video_name, a.network) == (b.scheme, b.video_name, b.network)
        # SessionMetrics is a frozen dataclass of floats: == is bitwise
        # equality field by field.
        assert a.metrics == b.metrics


def _base_spec(video, **overrides):
    fields = dict(scheme="CAVA", video_key=video.name, network="lte")
    fields.update(overrides)
    return SweepSpec(**fields)


def _estimator_factory(trace):
    """Module-level estimator factory (has a stable content identity)."""
    return None


def _key_in_child(root, spec, video, trace, config):
    """Recompute a session key in a worker process."""
    return SessionStore(root).key_for(spec, video, trace, config)


class TestKeyInvalidation:
    """Each keyed input, changed alone, must change the key."""

    @pytest.fixture()
    def store(self, tmp_path):
        return SessionStore(tmp_path / "store")

    @pytest.fixture()
    def base_key(self, store, short_video, one_lte_trace):
        return store.key_for(
            _base_spec(short_video), short_video, one_lte_trace, SessionConfig()
        )

    def test_scheme_changes_key(self, store, short_video, one_lte_trace, base_key):
        key = store.key_for(
            _base_spec(short_video, scheme="RBA"),
            short_video,
            one_lte_trace,
            SessionConfig(),
        )
        assert key != base_key

    def test_network_changes_key(self, store, short_video, one_lte_trace, base_key):
        key = store.key_for(
            _base_spec(short_video, network="fcc"),
            short_video,
            one_lte_trace,
            SessionConfig(),
        )
        assert key != base_key

    def test_algorithm_factory_params_change_key(
        self, store, short_video, one_lte_trace, base_key
    ):
        keys = [base_key]
        for window in (20.0, 40.0):
            factory = CavaFactory(CavaConfig(inner_window_s=window))
            keys.append(
                store.key_for(
                    _base_spec(short_video, algorithm_factory=factory),
                    short_video,
                    one_lte_trace,
                    SessionConfig(),
                )
            )
        assert len(set(keys)) == len(keys)

    def test_estimator_factory_changes_key(
        self, store, short_video, one_lte_trace, base_key
    ):
        key = store.key_for(
            _base_spec(short_video, estimator_factory=_estimator_factory),
            short_video,
            one_lte_trace,
            SessionConfig(),
        )
        assert key != base_key

    def test_fault_plan_changes_key(self, store, short_video, one_lte_trace, base_key):
        plan_a = FaultPlan((OutageFault(p=0.05),), seed=7)
        plan_b = FaultPlan((OutageFault(p=0.05),), seed=8)
        key_a = store.key_for(
            _base_spec(short_video, fault_plan=plan_a),
            short_video,
            one_lte_trace,
            SessionConfig(),
        )
        key_b = store.key_for(
            _base_spec(short_video, fault_plan=plan_b),
            short_video,
            one_lte_trace,
            SessionConfig(),
        )
        assert len({base_key, key_a, key_b}) == 3

    def test_session_config_changes_key(
        self, store, short_video, one_lte_trace, base_key
    ):
        key = store.key_for(
            _base_spec(short_video),
            short_video,
            one_lte_trace,
            SessionConfig(startup_latency_s=5.0),
        )
        assert key != base_key

    def test_trace_timeline_changes_key(
        self, store, short_video, one_lte_trace, base_key
    ):
        bumped = np.array(one_lte_trace.throughputs_bps)
        bumped[0] += 1.0
        tweaked = NetworkTrace(
            name=one_lte_trace.name,
            interval_s=one_lte_trace.interval_s,
            throughputs_bps=bumped,
        )
        key = store.key_for(
            _base_spec(short_video), short_video, tweaked, SessionConfig()
        )
        assert key != base_key

    def test_video_content_changes_key(
        self, store, short_video, one_lte_trace, base_key
    ):
        from repro.video.dataset import build_video

        # Same spec (and name), different seed: the manifest tables differ.
        other = build_video(_short_spec(), seed=1)
        key = store.key_for(
            _base_spec(short_video), other, one_lte_trace, SessionConfig()
        )
        assert key != base_key

    def test_equal_inputs_equal_keys_across_instances(
        self, tmp_path, short_video, one_lte_trace
    ):
        key_a = SessionStore(tmp_path / "a").key_for(
            _base_spec(short_video), short_video, one_lte_trace, SessionConfig()
        )
        key_b = SessionStore(tmp_path / "b").key_for(
            _base_spec(short_video), short_video, one_lte_trace, SessionConfig()
        )
        assert key_a == key_b

    def test_lambda_factory_is_uncacheable(self, store, short_video, one_lte_trace):
        spec = _base_spec(short_video, algorithm_factory=lambda: None)
        with pytest.raises(UncacheableValueError):
            store.key_for(spec, short_video, one_lte_trace, SessionConfig())

    def test_fingerprint_rejects_opaque_objects(self):
        with pytest.raises(UncacheableValueError):
            fingerprint(object())


def _short_spec():
    from repro.video.dataset import VideoSpec

    return VideoSpec(
        name="short-test",
        title="ED",
        genre="animation",
        source="ffmpeg",
        codec="h264",
        chunk_duration_s=2.0,
        cap_ratio=2.0,
        duration_s=120.0,
    )


class TestCrossProcessKeys:
    """Equal inputs must digest identically under fork and spawn."""

    @pytest.mark.parametrize(
        "method",
        [
            m
            for m in ("fork", "spawn")
            if m in multiprocessing.get_all_start_methods()
        ],
    )
    def test_child_process_recomputes_same_key(
        self, tmp_path, short_video, one_lte_trace, method
    ):
        spec = _base_spec(
            short_video, algorithm_factory=CavaFactory(CavaConfig())
        )
        config = SessionConfig()
        parent_key = SessionStore(tmp_path / "parent").key_for(
            spec, short_video, one_lte_trace, config
        )
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(processes=1) as pool:
            child_key = pool.apply(
                _key_in_child,
                (str(tmp_path / "child"), spec, short_video, one_lte_trace, config),
            )
        assert child_key == parent_key


class TestEntryIO:
    def _one_metric(self, short_video, one_lte_trace):
        return run_scheme_on_traces("RBA", short_video, [one_lte_trace]).metrics[0]

    def test_put_get_roundtrip_is_bit_exact(
        self, tmp_path, short_video, one_lte_trace
    ):
        store = SessionStore(tmp_path)
        metric = self._one_metric(short_video, one_lte_trace)
        key = store.key_for(
            _base_spec(short_video, scheme="RBA"),
            short_video,
            one_lte_trace,
            SessionConfig(),
        )
        store.put(key, metric)
        # A frozen dataclass of floats: == is bitwise field equality.
        assert store.get(key) == metric
        assert store.stats.hits == 1 and store.stats.puts == 1

    def _entry_paths(self, store):
        return sorted((store.root / "objects").rglob("*.json"))

    def test_corrupt_entry_reads_as_miss(self, tmp_path, short_video, one_lte_trace):
        store = SessionStore(tmp_path)
        key = store.key_for(
            _base_spec(short_video, scheme="RBA"),
            short_video,
            one_lte_trace,
            SessionConfig(),
        )
        store.put(key, self._one_metric(short_video, one_lte_trace))
        (path,) = self._entry_paths(store)
        path.write_bytes(path.read_bytes()[:-20] + b"garbage-not-json!!!!")
        assert store.get(key) is None
        assert store.stats.corrupt == 1 and store.stats.misses == 1
        problems = store.verify()
        assert len(problems) == 1 and "corrupt" in problems[0].problem
        removed = store.gc()
        assert removed["defective"] == 1
        assert store.verify() == []

    def test_stale_schema_entry_detected(self, tmp_path, short_video, one_lte_trace):
        store = SessionStore(tmp_path)
        key = store.key_for(
            _base_spec(short_video, scheme="RBA"),
            short_video,
            one_lte_trace,
            SessionConfig(),
        )
        store.put(key, self._one_metric(short_video, one_lte_trace))
        (path,) = self._entry_paths(store)
        entry = json.loads(path.read_text())
        entry["golden_schema"] = entry["golden_schema"] + 1
        path.write_text(json.dumps(entry))
        assert store.get(key) is None  # stale is a miss, never data
        problems = store.verify()
        assert len(problems) == 1 and "stale" in problems[0].problem

    def test_gc_bounds_entry_count(self, tmp_path, short_video, lte_traces):
        store = SessionStore(tmp_path)
        metric = self._one_metric(short_video, lte_traces[0])
        for trace in lte_traces[:5]:
            key = store.key_for(
                _base_spec(short_video, scheme="RBA"),
                short_video,
                trace,
                SessionConfig(),
            )
            store.put(key, metric)
        removed = store.gc(max_entries=2)
        assert removed["evicted"] == 3
        assert store.describe()["entries"] == 2


class TestWarmColdIdentity:
    """Warm re-runs must be bit-identical to cold ones, serial and pooled."""

    def test_serial_warm_equals_cold_equals_no_store(
        self, tmp_path, short_video, lte_traces
    ):
        traces = lte_traces[:4]
        baseline = run_comparison(SCHEMES, short_video, traces)

        store = SessionStore(tmp_path)
        engine = ParallelSweepRunner(n_workers=1, store=store)
        cold = engine.run_comparison(SCHEMES, short_video, traces)
        assert_sweeps_identical(baseline, cold)
        sessions = len(SCHEMES) * len(traces)
        assert store.stats.puts == sessions

        warm_store = SessionStore(tmp_path)
        warm_engine = ParallelSweepRunner(n_workers=1, store=warm_store)
        warm = warm_engine.run_comparison(SCHEMES, short_video, traces)
        assert_sweeps_identical(baseline, warm)
        # Fully warm: every session read back, none recomputed or rewritten.
        assert warm_store.stats.hits == sessions
        assert warm_store.stats.puts == 0

    @pytest.mark.parametrize(
        "method",
        [
            m
            for m in ("fork", "spawn")
            if m in multiprocessing.get_all_start_methods()
        ],
    )
    def test_pooled_cold_fills_store_warm_replays(
        self, tmp_path, short_video, lte_traces, method
    ):
        traces = lte_traces[:4]
        baseline = run_comparison(SCHEMES, short_video, traces)

        store = SessionStore(tmp_path)
        engine = ParallelSweepRunner(
            n_workers=2,
            min_parallel_sessions=0,
            mp_context=method,
            store=store,
        )
        cold = engine.run_comparison(SCHEMES, short_video, traces)
        assert_sweeps_identical(baseline, cold)
        assert store.stats.puts == len(SCHEMES) * len(traces)

        # The warm run hits on every session, so nothing is pending and
        # the engine never even spins up a pool.
        warm_store = SessionStore(tmp_path)
        warm_engine = ParallelSweepRunner(
            n_workers=2,
            min_parallel_sessions=0,
            mp_context=method,
            store=warm_store,
        )
        warm = warm_engine.run_comparison(SCHEMES, short_video, traces)
        assert_sweeps_identical(baseline, warm)
        assert warm_store.stats.hits == len(SCHEMES) * len(traces)
        assert warm_store.stats.puts == 0

    def test_widened_grid_replays_only_new_sessions(
        self, tmp_path, short_video, lte_traces
    ):
        store = SessionStore(tmp_path)
        ParallelSweepRunner(n_workers=1, store=store).run_comparison(
            SCHEMES, short_video, lte_traces[:3]
        )

        widened_store = SessionStore(tmp_path)
        engine = ParallelSweepRunner(n_workers=1, store=widened_store)
        widened = engine.run_comparison(SCHEMES, short_video, lte_traces[:5])
        assert_sweeps_identical(
            run_comparison(SCHEMES, short_video, lte_traces[:5]), widened
        )
        # Per scheme: 3 cached sessions replayed, 2 new ones computed.
        assert widened_store.stats.hits == len(SCHEMES) * 3
        assert widened_store.stats.puts == len(SCHEMES) * 2

    def test_uncacheable_spec_computes_without_store(
        self, tmp_path, short_video, lte_traces
    ):
        traces = lte_traces[:3]
        registry = MetricsRegistry()
        store = SessionStore(tmp_path)
        engine = ParallelSweepRunner(n_workers=1, store=store, registry=registry)
        spec = SweepSpec(
            scheme="RBA",
            video_key=short_video.name,
            # A closure has no content identity: bypass the store.
            estimator_factory=lambda trace: None,
        )
        (result,) = engine.run_specs([spec], {short_video.name: short_video}, traces)
        expected = run_scheme_on_traces("RBA", short_video, traces)
        assert result.metrics == expected.metrics
        assert store.describe()["entries"] == 0
        assert registry.counter(STORE_UNCACHEABLE_METRIC).value == 1

    def test_faulted_sweep_warm_replay(self, tmp_path, short_video, lte_traces):
        traces = lte_traces[:3]
        plan = FaultPlan((OutageFault(p=0.1, duration_intervals=2),), seed=3)

        baseline = run_comparison(["RBA"], short_video, traces, fault_plan=plan)
        store = SessionStore(tmp_path)
        engine = ParallelSweepRunner(n_workers=1, store=store, fault_plan=plan)
        cold = engine.run_comparison(["RBA"], short_video, traces)
        assert_sweeps_identical(baseline, cold)

        warm_store = SessionStore(tmp_path)
        warm_engine = ParallelSweepRunner(
            n_workers=1, store=warm_store, fault_plan=plan
        )
        warm = warm_engine.run_comparison(["RBA"], short_video, traces)
        assert_sweeps_identical(baseline, warm)
        assert warm_store.stats.hits == len(traces)

    def test_grid_search_resumes_from_cache_dir(
        self, tmp_path, short_video, lte_traces
    ):
        traces = lte_traces[:3]
        cache_dir = str(tmp_path / "tuning")
        first = grid_search(
            {"inner_window_s": (20.0, 40.0)}, short_video, traces,
            cache_dir=cache_dir,
        )

        resume_store = SessionStore(cache_dir)
        second = grid_search(
            {"inner_window_s": (20.0, 40.0, 80.0)}, short_video, traces,
            store=resume_store,
        )
        # Only the new configuration's sessions were computed.
        assert resume_store.stats.hits == 2 * len(traces)
        assert resume_store.stats.puts == 1 * len(traces)
        by_window = {r.overrides["inner_window_s"]: r.score for r in second}
        for result in first:
            assert by_window[result.overrides["inner_window_s"]] == result.score
