"""Tests for the table-reproduction functions."""

import pytest

from repro.experiments.tables import (
    ComparisonRow,
    bandwidth_error_study,
    codec_impact_study,
    table1,
    table2_dashjs,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self, request):
        video = request.getfixturevalue("ed_ffmpeg_video")
        traces = request.getfixturevalue("lte_traces")
        return table1([video], traces[:6], "lte")

    def test_two_baselines_per_video(self, rows):
        assert len(rows) == 2
        assert {r.baseline for r in rows} == {"RobustMPC", "PANDA/CQ max-min"}

    def test_paper_shape_vs_robustmpc(self, rows):
        """Table 1's RobustMPC column: CAVA higher Q4 quality, lower
        stalls, lower quality change, data usage same or lower."""
        row = next(r for r in rows if r.baseline == "RobustMPC")
        assert row.q4_quality_delta > 0
        assert row.rebuffer_change <= 0
        assert row.quality_change_change < 0
        assert row.data_usage_change < 0.05

    def test_paper_shape_vs_panda(self, rows):
        row = next(r for r in rows if r.baseline == "PANDA/CQ max-min")
        assert row.rebuffer_change <= 0
        assert row.data_usage_change < 0.05


class TestTable2:
    def test_dashjs_comparison(self, bbb_youtube_video, lte_traces):
        rows = table2_dashjs([bbb_youtube_video], lte_traces[:5])
        assert len(rows) == 1
        row = rows[0]
        assert row.baseline == "BOLA-E (seg)"
        # §6.8: CAVA wins Q4 quality and quality changes; BOLA-E's data
        # usage is lower (positive change for CAVA).
        assert row.q4_quality_delta > 0
        assert row.quality_change_change < 0


class TestCodecImpact:
    def test_h265_better_overall_quality(self, ed_ffmpeg_video, ed_h265_video, lte_traces):
        data = codec_impact_study(
            ed_ffmpeg_video, ed_h265_video, lte_traces[:5], baselines=("RobustMPC",)
        )
        # §6.5: every scheme does better under H.265.
        for scheme in data["h264_mean_quality"]:
            assert data["h265_mean_quality"][scheme] > data["h264_mean_quality"][scheme]

    def test_cava_advantage_persists(self, ed_ffmpeg_video, ed_h265_video, lte_traces):
        data = codec_impact_study(
            ed_ffmpeg_video, ed_h265_video, lte_traces[:5], baselines=("RobustMPC",)
        )
        for label in ("h264", "h265"):
            row = data[label][0]
            assert row.q4_quality_delta > 0


class TestBandwidthError:
    @pytest.fixture(scope="class")
    def study(self, request):
        video = request.getfixturevalue("ed_ffmpeg_video")
        traces = request.getfixturevalue("lte_traces")
        return bandwidth_error_study(
            video, traces[:6], errors=(0.0, 0.5), schemes=("CAVA", "MPC")
        )

    def test_structure(self, study):
        assert set(study) == {"CAVA", "MPC"}
        assert set(study["CAVA"]) == {0.0, 0.5}

    def test_claim_cava_insensitive(self, study):
        """§6.7: CAVA's Q4 quality and rebuffering barely move between
        err=0 and err=0.5."""
        clean = study["CAVA"][0.0]
        noisy = study["CAVA"][0.5]
        assert abs(noisy["q4_quality_mean"] - clean["q4_quality_mean"]) < 5.0
        assert noisy["rebuffer_s"] - clean["rebuffer_s"] < 5.0

    def test_claim_mpc_degrades_more(self, study):
        """§6.7: MPC suffers significantly more rebuffering at err=0.5."""
        cava_growth = study["CAVA"][0.5]["rebuffer_s"] - study["CAVA"][0.0]["rebuffer_s"]
        mpc_growth = study["MPC"][0.5]["rebuffer_s"] - study["MPC"][0.0]["rebuffer_s"]
        assert mpc_growth >= cava_growth


class TestComparisonRowMath:
    def test_fractional_change_sign(self):
        row = ComparisonRow("v", "lte", "X", 5.0, -0.5, -0.9, -0.3, -0.1)
        assert row.q4_quality_delta == 5.0
        assert row.rebuffer_change == -0.9
