"""Tests for repro.faults.plan: seeded, composable fault primitives."""

import pickle

import numpy as np
import pytest

from repro.faults.plan import (
    DropFault,
    FaultedLink,
    FaultPlan,
    LatencyFault,
    OutageFault,
    ScaleFault,
)
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace


def make_trace(name="t", intervals=50, bps=2e6):
    return NetworkTrace(name, 1.0, np.full(intervals, bps))


class TestOutageFault:
    def test_creates_zero_runs(self):
        trace = make_trace()
        plan = FaultPlan((OutageFault(p=0.2, duration_intervals=3),), seed=1)
        perturbed, events = plan.perturb_trace(trace)
        assert events > 0
        zeros = np.flatnonzero(perturbed.throughputs_bps == 0.0)
        assert zeros.size >= events  # every event floors >= 1 interval
        # untouched intervals keep their exact original value
        touched = perturbed.throughputs_bps < trace.throughputs_bps
        assert np.array_equal(
            perturbed.throughputs_bps[~touched], trace.throughputs_bps[~touched]
        )

    def test_floor_respected(self):
        fault = OutageFault(p=1.0, duration_intervals=1, floor_bps=5_000.0)
        out, events = fault.apply(np.full(10, 1e6), np.random.default_rng(0))
        assert events == 10
        assert np.all(out == 5_000.0)

    def test_floor_never_raises_throughput(self):
        # flooring an interval already below the floor must not lift it
        fault = OutageFault(p=1.0, duration_intervals=1, floor_bps=5_000.0)
        out, _ = fault.apply(np.full(4, 1_000.0), np.random.default_rng(0))
        assert np.all(out == 1_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OutageFault(p=1.5)
        with pytest.raises(ValueError):
            OutageFault(duration_intervals=0)
        with pytest.raises(ValueError):
            OutageFault(floor_bps=-1.0)


class TestScaleAndDrop:
    def test_scale_multiplies_everything(self):
        trace = make_trace()
        plan = FaultPlan((ScaleFault(factor=0.5),), seed=0)
        perturbed, events = plan.perturb_trace(trace)
        assert events == 1
        assert np.array_equal(perturbed.throughputs_bps, trace.throughputs_bps * 0.5)

    def test_drop_windows_are_multiplicative(self):
        fault = DropFault(p=1.0, duration_intervals=1, factor=0.3)
        out, events = fault.apply(np.full(10, 1e6), np.random.default_rng(0))
        assert events == 10
        assert np.allclose(out, 1e6 * 0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleFault(factor=-0.1)
        with pytest.raises(ValueError):
            DropFault(p=-0.5)


class TestDeterminism:
    def test_perturb_trace_is_pure(self):
        trace = make_trace()
        plan = FaultPlan(
            (OutageFault(p=0.1), DropFault(p=0.1), ScaleFault(factor=0.8)), seed=9
        )
        a, events_a = plan.perturb_trace(trace)
        b, events_b = plan.perturb_trace(trace)
        assert events_a == events_b
        assert np.array_equal(a.throughputs_bps, b.throughputs_bps)

    def test_different_seeds_differ(self):
        trace = make_trace(intervals=200)
        a, _ = FaultPlan((OutageFault(p=0.1),), seed=1).perturb_trace(trace)
        b, _ = FaultPlan((OutageFault(p=0.1),), seed=2).perturb_trace(trace)
        assert not np.array_equal(a.throughputs_bps, b.throughputs_bps)

    def test_different_traces_draw_independently(self):
        plan = FaultPlan((OutageFault(p=0.1),), seed=1)
        a, _ = plan.perturb_trace(make_trace(name="a", intervals=200))
        b, _ = plan.perturb_trace(make_trace(name="b", intervals=200))
        assert not np.array_equal(a.throughputs_bps, b.throughputs_bps)

    def test_trace_keeps_name_and_grid(self):
        trace = make_trace(name="lte-007")
        perturbed, _ = FaultPlan((ScaleFault(0.5),), seed=0).perturb_trace(trace)
        assert perturbed.name == trace.name
        assert perturbed.interval_s == trace.interval_s
        assert perturbed.num_intervals == trace.num_intervals


class TestComposition:
    def test_faults_apply_in_plan_order(self):
        trace = make_trace(bps=1e6)
        plan = FaultPlan((ScaleFault(0.5), ScaleFault(0.5)), seed=0)
        perturbed, events = plan.perturb_trace(trace)
        assert events == 2
        assert np.allclose(perturbed.throughputs_bps, 0.25e6)

    def test_latency_faults_do_not_touch_the_trace(self):
        trace = make_trace()
        plan = FaultPlan((LatencyFault(p=0.5),), seed=0)
        perturbed, events = plan.perturb_trace(trace)
        assert perturbed is trace  # no timeline rewrite, no copy
        assert events == 1  # armed latency faults count once each

    def test_describe_names_every_fault(self):
        plan = FaultPlan(
            (OutageFault(), ScaleFault(), DropFault(), LatencyFault()), seed=4
        )
        text = plan.describe()
        for word in ("outages", "scale", "drops", "latency", "seed=4"):
            assert word in text


class TestFaultedLink:
    def test_spike_elongates_download_keeps_start(self):
        link = TraceLink(make_trace(bps=1e6))
        plan = FaultPlan((LatencyFault(p=1.0, spike_s=2.0),), seed=1)
        faulted = plan.wrap_link(link)
        base = link.download(1e6, 3.0)
        spiked = faulted.download(1e6, 3.0)
        assert spiked.start_s == 3.0
        assert spiked.finish_s == pytest.approx(base.finish_s + 2.0)
        assert spiked.throughput_bps < base.throughput_bps

    def test_p_zero_never_spikes(self):
        link = TraceLink(make_trace())
        faulted = FaultedLink(link, (LatencyFault(p=0.0, spike_s=5.0),), seed=1)
        for start in (0.0, 1.25, 17.8):
            assert faulted.delay_at(start) == 0.0
            assert faulted.download(1e6, start) == link.download(1e6, start)

    def test_spike_decision_is_stateless(self):
        # Two independently built wrappers agree download-by-download:
        # the decision is a pure hash, not RNG state.
        link = TraceLink(make_trace())
        a = FaultedLink(link, (LatencyFault(p=0.5, spike_s=1.0),), seed=3)
        b = FaultedLink(link, (LatencyFault(p=0.5, spike_s=1.0),), seed=3)
        starts = [0.1 * k for k in range(100)]
        delays = [a.delay_at(s) for s in starts]
        assert delays == [b.delay_at(s) for s in starts]
        assert any(d > 0 for d in delays)
        assert any(d == 0 for d in delays)

    def test_wrap_link_is_noop_without_latency_faults(self):
        link = TraceLink(make_trace())
        plan = FaultPlan((OutageFault(),), seed=0)
        assert plan.wrap_link(link) is link

    def test_delegates_window_queries(self):
        link = TraceLink(make_trace(bps=2e6))
        faulted = FaultedLink(link, (LatencyFault(p=1.0),), seed=0)
        assert faulted.bits_in_window(0.0, 3.0) == link.bits_in_window(0.0, 3.0)
        assert faulted.average_bandwidth(0.0, 4.0) == link.average_bandwidth(0.0, 4.0)
        assert faulted.trace is link.trace


class TestPlanObject:
    def test_pickle_round_trip_preserves_identity(self):
        plan = FaultPlan(
            (OutageFault(p=0.05), LatencyFault(p=0.1, spike_s=0.5)), seed=7
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert hash(clone) == hash(plan)
        # usable as a dict key across the pickle boundary (the sweep
        # engine ships a {plan: traces} mapping to pool workers)
        assert {plan: "x"}[clone] == "x"

    def test_split_properties(self):
        plan = FaultPlan(
            (OutageFault(), LatencyFault(), DropFault(), ScaleFault()), seed=0
        )
        assert [type(f) for f in plan.trace_faults] == [
            OutageFault, DropFault, ScaleFault
        ]
        assert [type(f) for f in plan.latency_faults] == [LatencyFault]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(())
        with pytest.raises(ValueError):
            FaultPlan((OutageFault(),), seed=-1)
        with pytest.raises(ValueError):
            LatencyFault(spike_s=-1.0)
