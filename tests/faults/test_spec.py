"""Tests for the ``--faults`` spec grammar."""

import pytest

from repro.faults.plan import DropFault, LatencyFault, OutageFault, ScaleFault
from repro.faults.spec import parse_fault_plan
from repro.util.units import mbps_to_bps


class TestParsing:
    def test_bare_kind_uses_defaults(self):
        plan = parse_fault_plan("outages")
        assert plan.faults == (OutageFault(),)
        assert plan.seed == 0

    def test_outage_params(self):
        plan = parse_fault_plan("outages:p=0.05,len=4,floor_mbps=0.2,seed=7")
        (fault,) = plan.faults
        assert fault == OutageFault(
            p=0.05, duration_intervals=4, floor_bps=mbps_to_bps(0.2)
        )
        assert plan.seed == 7

    def test_all_kinds(self):
        plan = parse_fault_plan(
            "outages+scale:factor=0.8+drops:p=0.1,factor=0.2+latency:p=0.3,spike_s=2"
        )
        assert [type(f) for f in plan.faults] == [
            OutageFault, ScaleFault, DropFault, LatencyFault
        ]
        assert plan.faults[1] == ScaleFault(factor=0.8)
        assert plan.faults[2] == DropFault(p=0.1, duration_intervals=5, factor=0.2)
        assert plan.faults[3] == LatencyFault(p=0.3, spike_s=2.0)

    def test_last_seed_wins(self):
        plan = parse_fault_plan("outages:seed=3+latency:seed=9")
        assert plan.seed == 9

    def test_whitespace_tolerated(self):
        plan = parse_fault_plan("  outages : p=0.1 ")
        assert plan.faults == (OutageFault(p=0.1),)


class TestErrors:
    def test_empty_spec(self):
        with pytest.raises(ValueError, match="empty"):
            parse_fault_plan("")

    def test_empty_clause(self):
        with pytest.raises(ValueError, match="empty clause"):
            parse_fault_plan("outages++scale")

    def test_unknown_kind_named(self):
        with pytest.raises(ValueError, match="bogus"):
            parse_fault_plan("bogus:p=1")

    def test_unknown_key_named(self):
        with pytest.raises(ValueError, match="wavelength"):
            parse_fault_plan("outages:wavelength=3")

    def test_key_for_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="spike_s"):
            parse_fault_plan("outages:spike_s=1")

    def test_non_numeric_value(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_fault_plan("outages:p=lots")

    def test_missing_equals(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault_plan("outages:p")

    def test_out_of_range_value_propagates(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            parse_fault_plan("outages:p=2")
