"""Seeded arrival process: determinism, shape, and envelope honesty."""

import numpy as np
import pytest

from repro.fleet.arrivals import (
    crowd_factor,
    diurnal_factor,
    edge_arrival_times,
    edge_rate_fn,
    generate_arrivals,
)
from repro.fleet.spec import FlashCrowd, FleetSpec
from repro.util.rng import derive_rng


def small_spec(**overrides):
    defaults = dict(
        seed=0,
        duration_s=1200.0,
        n_edges=4,
        arrivals_per_s=2.0,
        diurnal_amplitude=0.3,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestRateShape:
    def test_diurnal_trough_at_origin_peak_at_half_period(self):
        t = np.array([0.0, 500.0, 1000.0])
        factor = diurnal_factor(t, amplitude=0.4, period_s=1000.0)
        assert factor[0] == pytest.approx(0.6)
        assert factor[1] == pytest.approx(1.4)
        assert factor[2] == pytest.approx(0.6)

    def test_diurnal_integrates_to_mean_one(self):
        t = np.linspace(0.0, 1000.0, 100_001)
        factor = diurnal_factor(t, amplitude=0.35, period_s=1000.0)
        assert factor.mean() == pytest.approx(1.0, abs=1e-4)

    def test_crowd_factor_is_one_outside_and_peak_inside(self):
        crowd = FlashCrowd(start_s=300.0, duration_s=100.0, multiplier=5.0, ramp_s=50.0)
        t = np.array([0.0, 249.0, 300.0, 350.0, 400.0, 451.0, 1000.0])
        factor = crowd_factor(t, [crowd])
        assert factor[0] == 1.0
        assert factor[1] == 1.0
        assert factor[2] == pytest.approx(5.0)
        assert factor[3] == pytest.approx(5.0)
        assert factor[4] == pytest.approx(5.0)
        assert factor[5] == 1.0
        assert factor[6] == 1.0

    def test_crowd_ramps_are_linear_and_continuous(self):
        crowd = FlashCrowd(start_s=300.0, duration_s=100.0, multiplier=3.0, ramp_s=60.0)
        halfway_up = crowd_factor(np.array([270.0]), [crowd])[0]
        assert halfway_up == pytest.approx(2.0)

    def test_rate_never_exceeds_envelope(self):
        spec = small_spec(
            flash_crowds=(FlashCrowd(start_s=400.0, duration_s=200.0, multiplier=4.0),)
        )
        t = np.linspace(0.0, spec.duration_s, 20_001)
        rate = edge_rate_fn(spec)(t)
        envelope = spec.edge_arrival_rate * spec.peak_rate_factor
        assert np.all(rate <= envelope + 1e-12)


class TestGeneration:
    def test_same_rng_state_same_stream(self):
        spec = small_spec()
        times_a = edge_arrival_times(spec, 2)
        times_b = edge_arrival_times(spec, 2)
        assert np.array_equal(times_a, times_b)

    def test_edges_get_independent_streams(self):
        spec = small_spec()
        assert not np.array_equal(edge_arrival_times(spec, 0), edge_arrival_times(spec, 1))

    def test_times_sorted_and_in_horizon(self):
        spec = small_spec()
        times = edge_arrival_times(spec, 0)
        assert times.size > 0
        assert np.all(np.diff(times) > 0)
        assert times[0] >= 0.0
        assert times[-1] < spec.duration_s

    def test_crowd_window_is_denser(self):
        crowd = FlashCrowd(start_s=600.0, duration_s=300.0, multiplier=6.0)
        spec = small_spec(duration_s=1800.0, flash_crowds=(crowd,), diurnal_amplitude=0.0)
        times = edge_arrival_times(spec, 0)
        inside = np.count_nonzero((times >= 600.0) & (times < 900.0))
        before = np.count_nonzero((times >= 200.0) & (times < 500.0))
        # 6x the rate over an equal window; 3x is a generous slack bound.
        assert inside > 3 * max(before, 1)

    def test_mean_count_tracks_rate_integral(self):
        spec = small_spec(duration_s=2000.0, diurnal_amplitude=0.0)
        counts = [
            generate_arrivals(
                derive_rng(k, "check"), spec.duration_s, edge_rate_fn(spec),
                spec.edge_arrival_rate * spec.peak_rate_factor,
            ).size
            for k in range(10)
        ]
        expected = spec.edge_arrival_rate * spec.duration_s
        assert np.mean(counts) == pytest.approx(expected, rel=0.1)

    def test_rejects_nonpositive_envelope(self):
        with pytest.raises(ValueError):
            generate_arrivals(derive_rng(0, "x"), 10.0, lambda t: t * 0 + 1.0, 0.0)
