"""Fleet benchmark harness: record layout, stage breakdown, perf gate.

The gate's skip rules carry real weight — CI compares a smoke-scale
run against the checked-in full-scale baseline, so a wrong "comparable"
decision either fails good code or waves regressions through.
"""

from __future__ import annotations

import copy
import unittest

from repro.fleet.bench import (
    bench_spec,
    build_record,
    fleet_gate,
    is_full_scale,
    run_fleet_benchmark,
    stage_breakdown,
)
from repro.fleet.sim import (
    STAGE_ADVANCE,
    STAGE_BUCKET_FOLD,
    STAGE_COMPLETION,
    STAGE_DISPATCH,
)

_SPEC = bench_spec(duration_s=180.0, n_edges=2, arrivals_per_s=1.0)


def _record():
    result, elapsed = run_fleet_benchmark(_SPEC, n_workers=1, rounds=1)
    return build_record(
        _SPEC, result, elapsed_s=elapsed, workers=1, rounds=1,
        stages=stage_breakdown(_SPEC),
    )


class RecordTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.record = _record()

    def test_timing_block_has_rate_figures(self):
        timing = self.record["timing"]
        self.assertEqual(timing["workers"], 1)
        self.assertEqual(timing["rounds"], 1)
        self.assertGreater(timing["events_per_s"], 0)
        self.assertGreater(timing["sessions_per_s"], 0)
        self.assertGreater(timing["us_per_event"], 0)
        self.assertFalse(timing["full_scale"])

    def test_spec_block_survives_for_gate_comparability(self):
        self.assertEqual(self.record["spec"]["duration_s"], 180.0)
        self.assertEqual(self.record["spec"]["n_edges"], 2)

    def test_stage_breakdown_covers_all_four_stages(self):
        stages = self.record["stages"]["stages"]
        for name in (
            STAGE_COMPLETION, STAGE_ADVANCE, STAGE_DISPATCH, STAGE_BUCKET_FOLD,
        ):
            self.assertIn(name, stages)
            self.assertGreaterEqual(stages[name]["wall_s"], 0.0)
        # Shares partition the instrumented wall time.
        total = sum(entry["share"] for entry in stages.values())
        self.assertAlmostEqual(total, 1.0, places=2)
        # Query and advance fire once per event; dispatch once per
        # actionable event.
        events = self.record["stages"]["events"]
        self.assertGreater(events, 0)
        self.assertLessEqual(abs(stages[STAGE_COMPLETION]["count"] - events), 1)

    def test_full_scale_flag(self):
        self.assertFalse(is_full_scale(_SPEC))
        self.assertTrue(is_full_scale(bench_spec()))


class GateTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.record = _record()

    def test_identical_records_pass(self):
        self.assertEqual(fleet_gate(self.record, self.record), [])

    def test_event_rate_regression_fails(self):
        slow = copy.deepcopy(self.record)
        slow["timing"]["events_per_s"] = (
            self.record["timing"]["events_per_s"] * 0.5
        )
        lines = fleet_gate(slow, self.record, tolerance=0.30)
        self.assertEqual(len(lines), 1)
        self.assertIn("events_per_s", lines[0])

    def test_session_rate_regression_fails_at_matching_scale(self):
        slow = copy.deepcopy(self.record)
        slow["timing"]["sessions_per_s"] = (
            self.record["timing"]["sessions_per_s"] * 0.5
        )
        lines = fleet_gate(slow, self.record, tolerance=0.30)
        self.assertEqual(len(lines), 1)
        self.assertIn("sessions_per_s", lines[0])

    def test_session_rate_skipped_across_scales(self):
        other = copy.deepcopy(self.record)
        other["spec"]["duration_s"] = 5400.0
        other["timing"]["sessions_per_s"] = 1.0
        # Different population scale: sessions/s is a different
        # workload, only the per-event rate is judged.
        self.assertEqual(fleet_gate(other, self.record, tolerance=0.30), [])

    def test_worker_mismatch_skips_everything(self):
        pooled = copy.deepcopy(self.record)
        pooled["timing"]["workers"] = 4
        pooled["timing"]["events_per_s"] = 1.0
        self.assertEqual(fleet_gate(pooled, self.record), [])

    def test_missing_metric_is_skipped_not_failed(self):
        legacy = copy.deepcopy(self.record)
        del legacy["timing"]["events_per_s"]
        self.assertEqual(fleet_gate(self.record, legacy), [])
        self.assertEqual(fleet_gate(legacy, self.record), [])

    def test_within_tolerance_passes(self):
        slightly = copy.deepcopy(self.record)
        slightly["timing"]["events_per_s"] = (
            self.record["timing"]["events_per_s"] * 0.8
        )
        self.assertEqual(fleet_gate(slightly, self.record, tolerance=0.30), [])

    def test_negative_tolerance_rejected(self):
        with self.assertRaises(ValueError):
            fleet_gate(self.record, self.record, tolerance=-0.1)


if __name__ == "__main__":
    unittest.main()
