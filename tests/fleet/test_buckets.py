"""Bucket-index flooring and the numpy accumulator's bit-identity.

``int(t / width)`` alone mis-buckets times within an ulp of a boundary
— the division can round the quotient up across the boundary (credit
lands one bucket late) or, for an exact boundary time with an inexact
quotient, down (credit lands one bucket early). Every bucket-index
computation in the fleet goes through :func:`bucket_index`, and these
tests pin the flooring at the exact boundaries plus the vectorized
``add_window`` fold's equality with a scalar per-bucket loop.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.sim import _Buckets, bucket_index


class TestBucketIndex:
    def test_interior_times(self):
        assert bucket_index(0.0, 60.0) == 0
        assert bucket_index(30.0, 60.0) == 0
        assert bucket_index(59.999, 60.0) == 0
        assert bucket_index(60.001, 60.0) == 1

    def test_exact_boundaries_open_the_next_bucket(self):
        # [k*w, (k+1)*w): a boundary time belongs to the bucket it opens.
        for k in range(200):
            assert bucket_index(k * 60.0, 60.0) == k
            assert bucket_index(k * 0.1, 0.1) == k

    def test_issue_case_splits_across_the_boundary(self):
        # The regression pair from the issue: an event at
        # 179.99999999999997 and one at 180.0 must land in *different*
        # buckets (the first closes bucket 2, the second opens bucket 3).
        t = math.nextafter(180.0, 0.0)
        assert t == 179.99999999999997
        assert bucket_index(t, 60.0) == 2
        assert bucket_index(180.0, 60.0) == 3

    def test_division_roundoff_is_corrected_both_ways(self):
        # Genuine int(t / width) failures with an inexact width: the
        # quotient rounds *up* past the boundary product (1.7 / 0.1 ==
        # 17.000000000000004 but 17 * 0.1 == 1.7000000000000002 > 1.7,
        # so 1.7 still belongs to bucket 16) and *down* short of it
        # (4.3 / 0.1 == 42.99999999999999 though 43 * 0.1 == 4.3).
        assert int(1.7 / 0.1) == 17  # the raw division says 17...
        assert bucket_index(1.7, 0.1) == 16  # ...flooring says 16
        assert int(4.3 / 0.1) == 42  # the raw division says 42...
        assert bucket_index(4.3, 0.1) == 43  # ...flooring says 43

    @given(
        k=st.integers(min_value=0, max_value=10_000),
        width=st.sampled_from([0.1, 1.0, 7.5, 60.0, 3600.0]),
    )
    @settings(max_examples=200)
    def test_flooring_invariant(self, k, width):
        # For any returned index i: i*width <= t < (i+1)*width.
        for t in (
            k * width,
            math.nextafter(k * width, 0.0),
            math.nextafter(k * width, math.inf),
            (k + 0.5) * width,
        ):
            i = bucket_index(t, width)
            assert i * width <= t < (i + 1) * width


class TestBucketsAccumulator:
    def test_add_at_boundary_credit(self):
        buckets = _Buckets(60.0)
        buckets.add_at(math.nextafter(180.0, 0.0), 1.0)  # ulp below
        buckets.add_at(180.0, 1.0)  # exactly on
        out = buckets.array(4)
        assert list(out) == [0.0, 0.0, 1.0, 1.0]

    def test_add_window_matches_scalar_loop(self):
        # The vectorized interior fold must equal the per-bucket loop it
        # replaced, double for double.
        def scalar_reference(t0, t1, amount, width, n):
            out = np.zeros(n)
            density = amount / (t1 - t0)
            lo = bucket_index(t0, width)
            hi = bucket_index(t1, width)
            if lo == hi:
                out[lo] += amount
                return out
            out[lo] += density * ((lo + 1) * width - t0)
            for k in range(lo + 1, hi):
                out[k] += density * width
            out[hi] += density * (t1 - hi * width)
            return out

        cases = [
            (0.0, 10.0, 5.0),  # single bucket
            (55.0, 65.0, 3.0),  # straddles one boundary
            (10.0, 250.0, 7.25),  # several interior buckets
            (math.nextafter(180.0, 0.0), 300.5, 2.0),  # ulp-boundary start
            (59.5, 60.0, 1.0),  # ends exactly on a boundary
        ]
        for t0, t1, amount in cases:
            buckets = _Buckets(60.0)
            buckets.add_window(t0, t1, amount)
            got = buckets.array(8)
            want = scalar_reference(t0, t1, amount, 60.0, 8)
            assert got.tobytes() == want.tobytes(), (t0, t1, amount)

    def test_add_window_empty_span_is_noop(self):
        buckets = _Buckets(60.0)
        buckets.add_window(5.0, 5.0, 1.0)
        assert buckets.hi == 0

    def test_growth_preserves_values(self):
        buckets = _Buckets(1.0, capacity=2)
        buckets.add_at(0.5, 1.0)
        buckets.add_at(999.5, 2.0)  # forces several doublings
        out = buckets.array(1000)
        assert out[0] == 1.0
        assert out[999] == 2.0
        assert out.sum() == 3.0

    @given(
        t0=st.floats(min_value=0.0, max_value=500.0),
        span=st.floats(min_value=0.0, max_value=500.0),
        amount=st.floats(min_value=1e-6, max_value=1e9),
    )
    @settings(max_examples=150)
    def test_add_window_conserves_mass(self, t0, span, amount):
        t1 = t0 + span
        buckets = _Buckets(60.0)
        buckets.add_window(t0, t1, amount)
        if t1 > t0:
            total = float(buckets.array(32).sum())
            assert total == pytest.approx(amount, rel=1e-9)
