"""Bit-identity pin: fleet fingerprints vs. the committed golden file.

The golden digest in ``golden_fleet_fingerprint.json`` was captured
*before* the hot-path overhaul landed (cached completions, fused event
loop, numpy buckets), so these tests assert the optimized engine still
produces byte-identical totals and bucket curves — for serial and
pooled runs, under both multiprocessing start methods.

Regenerate the golden with ``tools/fleet_golden.py`` ONLY when a PR
intentionally changes the simulated numbers.

The acceptance-scale pin (seed 0, 24 edges, ~152k sessions) takes about
a minute serial and is env-gated::

    REPRO_FLEET_FULL_FINGERPRINT=1 PYTHONPATH=src \
        python -m pytest tests/fleet/test_fingerprint.py -k full
"""

import json
import os
from pathlib import Path

import pytest

from repro.fleet import FlashCrowd, FleetSpec, run_fleet
from repro.fleet.fingerprint import fleet_fingerprint

GOLDEN_PATH = Path(__file__).parent / "golden_fleet_fingerprint.json"

#: Mirrors tools/fleet_golden.py:small_spec() — the spec block recorded
#: in the golden file is asserted against these fields so the two cannot
#: silently drift apart.
SMALL_SPEC = FleetSpec(
    seed=0,
    duration_s=420.0,
    n_edges=4,
    arrivals_per_s=1.0,
    flash_crowds=(FlashCrowd(start_s=252.0, duration_s=84.0, multiplier=6.0),),
)

#: Mirrors tools/fleet_golden.py:full_spec() — the BENCH_fleet spec.
FULL_SPEC = FleetSpec(
    seed=0,
    duration_s=5400.0,
    n_edges=24,
    arrivals_per_s=20.0,
    flash_crowds=(FlashCrowd(start_s=3240.0, duration_s=300.0, multiplier=6.0),),
)


def golden(section):
    data = json.loads(GOLDEN_PATH.read_text())
    assert section in data, f"golden file has no {section!r} section"
    return data[section]


def assert_spec_matches(entry, spec):
    recorded = entry["spec"]
    assert recorded["seed"] == spec.seed
    assert recorded["duration_s"] == spec.duration_s
    assert recorded["n_edges"] == spec.n_edges
    assert recorded["arrivals_per_s"] == spec.arrivals_per_s


class TestSmallPin:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_digest_pinned_across_pools_and_start_methods(self, method, workers):
        entry = golden("small")
        assert_spec_matches(entry, SMALL_SPEC)
        fp = fleet_fingerprint(
            run_fleet(SMALL_SPEC, n_workers=workers, mp_context=method)
        )
        # Compare scalars first: a digest mismatch alone is undebuggable.
        recorded = entry["scalars"]
        for name, value in fp["scalars"].items():
            want = recorded[name]
            got = value if isinstance(value, (int, str)) else repr(value)
            assert got == want, f"{name}: {got} != golden {want}"
        assert fp["digest"] == entry["digest"]


@pytest.mark.skipif(
    os.environ.get("REPRO_FLEET_FULL_FINGERPRINT") != "1",
    reason="full-scale pin is slow; set REPRO_FLEET_FULL_FINGERPRINT=1",
)
class TestFullPin:
    def test_acceptance_scale_digest_pinned(self):
        entry = golden("full")
        assert_spec_matches(entry, FULL_SPEC)
        fp = fleet_fingerprint(run_fleet(FULL_SPEC, n_workers=1))
        recorded = entry["scalars"]
        for name, value in fp["scalars"].items():
            want = recorded[name]
            got = value if isinstance(value, (int, str)) else repr(value)
            assert got == want, f"{name}: {got} != golden {want}"
        assert fp["digest"] == entry["digest"]
