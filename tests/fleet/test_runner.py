"""FleetRunner determinism contract: one spec, one result — however the
edges are sharded (worker count) and however workers start (fork/spawn).
"""

import json

import numpy as np
import pytest

from repro.fleet import FlashCrowd, FleetSpec, run_fleet, synthesize_edge_trace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer

SPEC = FleetSpec(
    seed=0,
    duration_s=420.0,
    n_edges=4,
    arrivals_per_s=0.8,
    edge_capacity_mbps=50.0,
    videos=("ED-youtube-h264",),
    flash_crowds=(FlashCrowd(start_s=250.0, duration_s=80.0, multiplier=3.0),),
)

_ARRAYS = (
    "delivered_bits",
    "capacity_bits",
    "concurrency_s",
    "download_s",
    "stall_s",
    "arrivals",
    "finishes",
    "qoe_sum",
    "qoe_count",
)


def fingerprint(result):
    arrays = tuple(getattr(result, name).tobytes() for name in _ARRAYS)
    scalars = (
        result.sessions,
        result.live_sessions,
        result.chunks,
        result.bits,
        result.stall_total_s,
        result.qoe_mean,
        result.mean_quality,
        result.peak_concurrency,
    )
    return arrays, scalars


@pytest.fixture(scope="module")
def serial_result():
    return run_fleet(SPEC, n_workers=1)


class TestDeterminism:
    def test_serial_repeatable(self, serial_result):
        assert fingerprint(run_fleet(SPEC, n_workers=1)) == fingerprint(serial_result)

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_pool_matches_serial_bitwise(self, serial_result, method):
        pooled = run_fleet(SPEC, n_workers=2, mp_context=method)
        assert fingerprint(pooled) == fingerprint(serial_result)

    def test_edge_order_is_canonical(self, serial_result):
        assert [e.edge_index for e in serial_result.edges] == list(range(SPEC.n_edges))


class TestEdgeTraces:
    def test_trace_is_pure_function_of_spec_and_edge(self):
        a = synthesize_edge_trace(SPEC, 1)
        b = synthesize_edge_trace(SPEC, 1)
        assert np.array_equal(a.throughputs_bps, b.throughputs_bps)
        assert not np.array_equal(
            a.throughputs_bps, synthesize_edge_trace(SPEC, 2).throughputs_bps
        )

    def test_mean_capacity_is_dimensioned(self):
        trace = synthesize_edge_trace(SPEC, 0)
        assert trace.throughputs_bps.mean() == pytest.approx(
            SPEC.edge_capacity_mbps * 1e6, rel=0.15
        )


class TestReporting:
    def test_report_is_json_serializable(self, serial_result):
        report = serial_result.report()
        encoded = json.dumps(report)
        decoded = json.loads(encoded)
        assert decoded["totals"]["sessions"] == serial_result.sessions
        assert len(decoded["curves"]["concurrency"]) == len(decoded["curves"]["t_s"])
        assert len(decoded["edges"]) == SPEC.n_edges

    def test_registry_and_spans_populated(self):
        registry = MetricsRegistry()
        tracer = SpanTracer("test-fleet")
        result = run_fleet(SPEC, n_workers=1, registry=registry, tracer=tracer)
        assert registry.value("repro_fleet_sessions_total") == result.sessions
        assert registry.value("repro_fleet_edges_total") == SPEC.n_edges
        assert registry.value("repro_fleet_peak_concurrent_sessions") > 0
        names = {span["name"] for span in tracer.spans}
        assert {"fleet.plan", "fleet.drain", "fleet.merge", "fleet.edge"} <= names
        edge_spans = [s for s in tracer.spans if s["name"] == "fleet.edge"]
        assert len(edge_spans) == SPEC.n_edges

    def test_derived_curves_are_sane(self, serial_result):
        util = serial_result.utilization_curve
        rebuf = serial_result.rebuffer_ratio_curve
        assert np.all((util >= 0.0) & (util <= 1.0 + 1e-9))
        assert np.all(rebuf >= 0.0)
        assert serial_result.peak_concurrency > 0
