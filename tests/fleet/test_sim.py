"""Edge simulator: accounting conservation, determinism, fault paths."""

import numpy as np
import pytest

from repro.faults.spec import parse_fault_plan
from repro.fleet.arrivals import edge_arrival_times
from repro.fleet.sim import simulate_edge
from repro.fleet.spec import FleetSpec
from repro.fleet.runner import synthesize_edge_trace


def tiny_spec(**overrides):
    defaults = dict(
        seed=0,
        duration_s=400.0,
        n_edges=2,
        arrivals_per_s=0.6,
        edge_capacity_mbps=40.0,
        videos=("ED-youtube-h264",),
        schemes=("CAVA", "RBA"),
        bucket_s=60.0,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


@pytest.fixture(scope="module")
def tiny_edge(ed_youtube_video):
    spec = tiny_spec()
    videos = {"ED-youtube-h264": ed_youtube_video}
    trace = synthesize_edge_trace(spec, 0)
    return spec, videos, trace, simulate_edge(spec, 0, videos, trace)


class TestAccounting:
    def test_every_arrival_becomes_a_session(self, tiny_edge):
        spec, _videos, _trace, result = tiny_edge
        assert result.sessions == edge_arrival_times(spec, 0).size
        assert result.sessions > 0

    def test_arrival_and_finish_buckets_conserve_sessions(self, tiny_edge):
        _spec, _videos, _trace, result = tiny_edge
        assert result.arrivals.sum() == pytest.approx(result.sessions)
        assert result.finishes.sum() == pytest.approx(result.sessions)
        assert result.qoe_count.sum() == pytest.approx(result.sessions)

    def test_delivered_bits_match_session_bits(self, tiny_edge):
        _spec, _videos, _trace, result = tiny_edge
        # Every bit the edge delivered belongs to some session's chunks
        # (to the bisection tolerance of the final trace interval).
        assert result.delivered_bits.sum() == pytest.approx(result.bits, rel=1e-4)

    def test_concurrency_integral_matches_session_lifetimes(self, tiny_edge):
        _spec, _videos, _trace, result = tiny_edge
        # Viewers are in-system from arrival to depart; the bucketed
        # integral can't exceed sessions x longest possible lifetime and
        # must cover sessions x shortest.
        viewer_seconds = result.concurrency_s.sum()
        assert viewer_seconds > 0
        assert result.peak_concurrency >= 1
        assert result.peak_downloads >= 1
        mean_lifetime = viewer_seconds / result.sessions
        assert 1.0 < mean_lifetime < 1000.0

    def test_capacity_bounds_delivery_per_bucket(self, tiny_edge):
        _spec, _videos, _trace, result = tiny_edge
        assert np.all(result.delivered_bits <= result.capacity_bits * (1 + 1e-9))

    def test_quality_and_chunk_scalars_populated(self, tiny_edge):
        _spec, _videos, _trace, result = tiny_edge
        assert result.chunks > 0
        assert result.sum_mean_quality > 0
        assert result.end_s > 0
        assert result.events > result.chunks  # waits/arrivals on top


class TestDeterminism:
    def test_bitwise_repeatable(self, ed_youtube_video):
        spec = tiny_spec()
        videos = {"ED-youtube-h264": ed_youtube_video}
        trace = synthesize_edge_trace(spec, 0)
        a = simulate_edge(spec, 0, videos, trace)
        b = simulate_edge(spec, 0, videos, trace)
        assert a.sessions == b.sessions
        assert a.bits == b.bits  # bitwise, not approx
        assert a.stall_total_s == b.stall_total_s
        assert a.qoe_total == b.qoe_total
        assert np.array_equal(a.delivered_bits, b.delivered_bits)
        assert np.array_equal(a.concurrency_s, b.concurrency_s)
        assert np.array_equal(a.stall_s, b.stall_s)

    def test_edges_differ(self, ed_youtube_video):
        spec = tiny_spec()
        videos = {"ED-youtube-h264": ed_youtube_video}
        a = simulate_edge(spec, 0, videos, synthesize_edge_trace(spec, 0))
        b = simulate_edge(spec, 1, videos, synthesize_edge_trace(spec, 1))
        assert a.sessions != b.sessions or a.bits != b.bits


class TestFaults:
    def test_latency_spikes_slow_downloads(self, ed_youtube_video):
        videos = {"ED-youtube-h264": ed_youtube_video}
        base_spec = tiny_spec()
        plan = parse_fault_plan("latency:p=0.5,spike_s=2.0,seed=3")
        faulted_spec = tiny_spec(fault_plan=plan)
        trace = synthesize_edge_trace(base_spec, 0)
        base = simulate_edge(base_spec, 0, videos, trace)
        faulted = simulate_edge(faulted_spec, 0, videos, trace)
        # Same population; spiked fetches take longer end to end, so
        # sessions leave later and quality/stall totals shift.
        assert faulted.sessions == base.sessions
        assert faulted.end_s > base.end_s
        assert faulted.stall_total_s >= base.stall_total_s

    def test_outage_plan_perturbs_capacity(self, ed_youtube_video):
        videos = {"ED-youtube-h264": ed_youtube_video}
        plan = parse_fault_plan("outages:p=0.2,len=3,seed=5")
        spec = tiny_spec(fault_plan=plan)
        trace, events = plan.perturb_trace(synthesize_edge_trace(spec, 0))
        assert events > 0
        result = simulate_edge(spec, 0, videos, trace)
        assert result.sessions > 0
        assert result.stall_total_s >= 0.0
