"""End-to-end integration: the paper's headline comparisons on small
trace sets. These are the §6.3 claims in miniature — the benchmarks run
the full-size versions."""

import numpy as np
import pytest

from repro.experiments.runner import run_comparison
from repro.network.link import TraceLink
from repro.player.session import run_session


@pytest.fixture(scope="module")
def comparison(request):
    """CAVA vs the two headline baselines on 10 LTE traces."""
    video = request.getfixturevalue("ed_ffmpeg_video")
    traces = request.getfixturevalue("lte_traces")
    return run_comparison(
        ["CAVA", "RobustMPC", "PANDA/CQ max-min"], video, traces[:10], "lte"
    )


class TestHeadlineClaims:
    def test_cava_beats_robustmpc_on_q4(self, comparison):
        assert (
            comparison["CAVA"].mean("q4_quality_mean")
            > comparison["RobustMPC"].mean("q4_quality_mean")
        )

    def test_cava_fewest_stalls(self, comparison):
        cava = comparison["CAVA"].mean("rebuffer_s")
        assert cava <= comparison["RobustMPC"].mean("rebuffer_s")
        assert cava <= comparison["PANDA/CQ max-min"].mean("rebuffer_s")

    def test_cava_lower_quality_change_than_robustmpc(self, comparison):
        assert (
            comparison["CAVA"].mean("quality_change_per_chunk")
            < comparison["RobustMPC"].mean("quality_change_per_chunk")
        )

    def test_cava_fewer_low_quality_chunks_than_robustmpc(self, comparison):
        assert (
            comparison["CAVA"].mean("low_quality_fraction")
            <= comparison["RobustMPC"].mean("low_quality_fraction")
        )

    def test_cava_data_usage_same_ballpark_or_lower(self, comparison):
        """§6.3(v): CAVA's data usage is in the same ballpark or lower."""
        cava = comparison["CAVA"].mean("data_usage_mb")
        robust = comparison["RobustMPC"].mean("data_usage_mb")
        assert cava < robust * 1.05


class TestFccSmootherThanLte:
    def test_rebuffering_lower_on_fcc(self, ed_ffmpeg_video, lte_traces, fcc_traces):
        """§6.3: under FCC traces rebuffering drops for all schemes."""
        lte = run_comparison(["RobustMPC"], ed_ffmpeg_video, lte_traces[:8], "lte")
        fcc = run_comparison(["RobustMPC"], ed_ffmpeg_video, fcc_traces[:8], "fcc")
        assert (
            fcc["RobustMPC"].mean("rebuffer_s") <= lte["RobustMPC"].mean("rebuffer_s")
        )


class TestAllSchemesRunEverywhere:
    """Every registered scheme completes a session on every chunk duration."""

    @pytest.mark.parametrize(
        "scheme",
        [
            "CAVA", "CAVA-p1", "CAVA-p12", "MPC", "RobustMPC",
            "PANDA/CQ max-sum", "PANDA/CQ max-min",
            "BOLA-E (peak)", "BOLA-E (avg)", "BOLA-E (seg)", "BBA-1", "RBA",
        ],
    )
    def test_scheme_completes(self, scheme, short_video, one_lte_trace):
        from repro.abr.registry import make_scheme, needs_quality_manifest

        algorithm = make_scheme(scheme)
        result = run_session(
            algorithm,
            short_video,
            TraceLink(one_lte_trace),
            include_quality=needs_quality_manifest(scheme),
        )
        assert result.num_chunks == short_video.num_chunks
        assert np.all(result.levels >= 0) and np.all(result.levels <= 5)

    @pytest.mark.parametrize("scheme", ["CAVA", "RobustMPC", "BOLA-E (seg)"])
    def test_scheme_on_five_second_chunks(self, scheme, bbb_youtube_video, one_lte_trace):
        from repro.abr.registry import make_scheme, needs_quality_manifest

        algorithm = make_scheme(scheme)
        result = run_session(
            algorithm,
            bbb_youtube_video,
            TraceLink(one_lte_trace),
            include_quality=needs_quality_manifest(scheme),
        )
        assert result.num_chunks == bbb_youtube_video.num_chunks


class TestConservation:
    """Cross-module invariants of a finished session."""

    def test_downloaded_equals_manifest_sizes(self, ed_ffmpeg_video, one_lte_trace):
        from repro.core.cava import cava_p123

        result = run_session(cava_p123(), ed_ffmpeg_video, TraceLink(one_lte_trace))
        manifest = ed_ffmpeg_video.manifest()
        for i, level in enumerate(result.levels):
            assert result.sizes_bits[i] == pytest.approx(
                manifest.chunk_size_bits(int(level), i)
            )

    def test_download_times_respect_link_capacity(self, ed_ffmpeg_video, one_lte_trace):
        """Bits delivered during each download window match the trace."""
        from repro.core.cava import cava_p123

        link = TraceLink(one_lte_trace)
        result = run_session(cava_p123(), ed_ffmpeg_video, link)
        for i in range(0, result.num_chunks, 25):
            window_bits = link.bits_in_window(
                result.download_start_s[i], result.download_finish_s[i]
            )
            assert window_bits == pytest.approx(result.sizes_bits[i], rel=1e-6, abs=10.0)
