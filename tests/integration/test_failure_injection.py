"""Failure injection and hostile-input edge cases across the pipeline."""

import numpy as np
import pytest

from repro.abr.bola import BolaEAlgorithm
from repro.abr.registry import make_scheme, needs_quality_manifest
from repro.core.cava import cava_p123
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.session import SessionConfig, run_session
from repro.video.dataset import VideoSpec, build_video
from repro.video.model import Track, VideoAsset


def tiny_video(num_chunks=4, chunk_duration=2.0, num_tracks=6):
    spec = VideoSpec(
        name="tiny", title="T", genre="animation", source="ffmpeg", codec="h264",
        chunk_duration_s=chunk_duration, cap_ratio=2.0,
        duration_s=num_chunks * chunk_duration,
    )
    return build_video(spec, seed=0)


class TestZeroThroughputIntervals:
    """Real trace files can contain zero samples (radio outages)."""

    def make_outage_trace(self):
        values = np.full(600, 2e6)
        values[100:130] = 0.0  # a 30-second dead zone
        return NetworkTrace("outage", 1.0, values)

    def test_link_skips_dead_zone(self):
        link = TraceLink(self.make_outage_trace())
        # A download started just before the outage must finish after it.
        result = link.download(5e6, start_s=98.0)
        assert result.finish_s > 130.0

    def test_session_survives_outage(self, short_video):
        result = run_session(cava_p123(), short_video, TraceLink(self.make_outage_trace()))
        assert result.num_chunks == short_video.num_chunks
        assert np.isfinite(result.download_finish_s).all()

    def test_all_zero_trace_rejected_by_link(self):
        with pytest.raises(ValueError, match="zero bits"):
            TraceLink(NetworkTrace("dead", 1.0, np.zeros(10)))


class TestDegenerateVideos:
    def test_four_chunk_video_with_five_chunk_horizon(self, one_lte_trace):
        """Lookahead schemes must truncate at the end of a video shorter
        than their horizon."""
        video = tiny_video(num_chunks=4)
        for scheme in ("MPC", "RobustMPC", "PANDA/CQ max-min", "CAVA"):
            algorithm = make_scheme(scheme)
            result = run_session(
                algorithm, video, TraceLink(one_lte_trace),
                SessionConfig(startup_latency_s=2.0, max_buffer_s=30.0),
                include_quality=needs_quality_manifest(scheme),
            )
            assert result.num_chunks == 4

    def test_single_track_ladder(self, one_lte_trace):
        """A one-track 'ladder' leaves no choice; schemes must not crash
        (BOLA is the exception: its utility needs a real ladder and says so)."""
        full = tiny_video(num_chunks=10)
        track = full.tracks[2]
        solo_track = Track(
            level=0,
            resolution=track.resolution,
            chunk_sizes_bits=track.chunk_sizes_bits,
            chunk_duration_s=track.chunk_duration_s,
            declared_avg_bitrate_bps=track.declared_avg_bitrate_bps,
            qualities=dict(track.qualities),
        )
        video = VideoAsset(
            name="solo", genre="animation", codec="h264", source="ffmpeg",
            tracks=[solo_track], complexity=full.complexity, si=full.si, ti=full.ti,
            cap_ratio=2.0,
        )
        for scheme in ("CAVA", "RBA", "BBA-1", "MPC"):
            result = run_session(
                make_scheme(scheme), video, TraceLink(one_lte_trace),
                SessionConfig(startup_latency_s=2.0, max_buffer_s=30.0),
            )
            assert np.all(result.levels == 0)

    def test_bola_rejects_flat_ladder(self, one_lte_trace):
        video = tiny_video(num_chunks=8)
        flat = VideoAsset(
            name="flat", genre="animation", codec="h264", source="ffmpeg",
            tracks=[video.tracks[3]], complexity=video.complexity,
            si=video.si, ti=video.ti, cap_ratio=2.0,
        )
        flat.tracks[0].level = 0
        algorithm = BolaEAlgorithm("avg")
        with pytest.raises(ValueError, match="ladder too flat"):
            algorithm.prepare(flat.manifest())


class TestHostileSessionConfigs:
    def test_startup_equals_max_buffer(self, short_video, one_lte_trace):
        config = SessionConfig(startup_latency_s=20.0, max_buffer_s=20.0)
        result = run_session(cava_p123(), short_video, TraceLink(one_lte_trace), config)
        assert result.buffer_after_s.max() <= 20.0 + 1e-9

    def test_very_small_buffer(self, short_video, one_lte_trace):
        """A 6-second cap forces near-live operation; everything still
        accounts correctly."""
        config = SessionConfig(startup_latency_s=4.0, max_buffer_s=6.0)
        result = run_session(cava_p123(), short_video, TraceLink(one_lte_trace), config)
        assert result.buffer_after_s.max() <= 6.0 + 1e-9
        assert result.num_chunks == short_video.num_chunks


class TestExtremeBandwidths:
    @pytest.mark.parametrize("mbps", [0.05, 1000.0])
    def test_absurd_constant_rates(self, short_video, mbps):
        trace = NetworkTrace("x", 1.0, np.full(4000, mbps * 1e6))
        result = run_session(
            cava_p123(), short_video, TraceLink(trace),
            SessionConfig(startup_latency_s=4.0, max_buffer_s=40.0),
        )
        assert result.num_chunks == short_video.num_chunks
        warmed = result.levels[2:]  # first picks use the cold-start estimate
        if mbps >= 1000.0:
            assert result.total_stall_s == 0.0
            assert warmed.min() >= 4  # nothing stops the top tracks
        else:
            assert np.all(warmed == 0)  # starved: bottom track only

    def test_sawtooth_bandwidth(self, short_video):
        """Pathological oscillation between feast and famine."""
        values = np.tile(np.concatenate([np.full(5, 8e6), np.full(5, 2e5)]), 120)
        trace = NetworkTrace("sawtooth", 1.0, values)
        result = run_session(cava_p123(), short_video, TraceLink(trace))
        assert result.num_chunks == short_video.num_chunks
        assert np.isfinite(result.stall_s).all()
