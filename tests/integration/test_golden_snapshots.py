"""Golden bit-identity snapshots for every registered scheme.

Each registered scheme ran one fixed (video, trace, seed) session when
the snapshots were captured (``tools/make_golden_snapshots.py``); these
tests re-run the same session and require ``SessionResult.to_dict()``
equality — *exact* float equality, no tolerances. Any hot-path
optimization that perturbs even one bit of one download timing fails
here, for the exact scheme and field that moved.

The pooled variant pushes the same grid through the process-pool sweep
engine with two workers, proving worker processes produce the same
sessions (their summary metrics must equal metrics recomputed from the
archived serial records).
"""

from __future__ import annotations

import json

import pytest

from repro.abr.registry import scheme_names
from repro.experiments.golden import (
    GOLDEN_METRIC,
    GOLDEN_NETWORK,
    golden_path,
    golden_session,
    golden_trace,
    golden_video,
)
from repro.experiments.parallel import ParallelSweepRunner
from repro.player.metrics import summarize_session
from repro.player.session import SessionResult
from repro.video.classify import ChunkClassifier


@pytest.fixture(scope="module")
def video():
    return golden_video()


@pytest.fixture(scope="module")
def trace():
    return golden_trace()


def load_golden(scheme: str) -> dict:
    path = golden_path(scheme)
    if not path.exists():
        pytest.fail(
            f"missing golden snapshot {path}; regenerate with "
            "PYTHONPATH=src python tools/make_golden_snapshots.py"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("scheme", scheme_names())
def test_serial_session_matches_golden(scheme, video, trace):
    result = golden_session(scheme, video, trace)
    expected = load_golden(scheme)
    actual = result.to_dict()
    assert actual.keys() == expected.keys()
    for key in expected:
        assert actual[key] == expected[key], f"{scheme}: field {key!r} diverged"


@pytest.fixture(scope="module")
def pooled_results(video, trace):
    """One two-worker pooled run over every scheme on the golden grid."""
    engine = ParallelSweepRunner(n_workers=2, min_parallel_sessions=0)
    return engine.run_comparison(scheme_names(), video, [trace], GOLDEN_NETWORK)


@pytest.fixture(scope="module")
def classifier(video):
    return ChunkClassifier.from_video(video)


@pytest.mark.parametrize("scheme", scheme_names())
def test_pooled_session_matches_golden(scheme, pooled_results, video, classifier):
    archived = SessionResult.from_dict(load_golden(scheme))
    expected = summarize_session(archived, video, GOLDEN_METRIC, classifier)
    pooled = pooled_results[scheme].metrics[0]
    assert pooled == expected, f"{scheme}: pooled metrics diverged from golden"
