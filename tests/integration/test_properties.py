"""Hypothesis property tests across the whole pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.registry import make_scheme, needs_quality_manifest
from repro.network.link import TraceLink
from repro.network.traces import synthesize_lte_traces
from repro.player.metrics import summarize_session
from repro.player.session import SessionConfig, run_session
from repro.video.dataset import VideoSpec, build_video

SCHEMES = ["CAVA", "RobustMPC", "BOLA-E (seg)", "BBA-1", "RBA"]


@st.composite
def session_inputs(draw):
    scheme = draw(st.sampled_from(SCHEMES))
    trace_seed = draw(st.integers(min_value=0, max_value=30))
    video_seed = draw(st.integers(min_value=0, max_value=5))
    chunk_duration = draw(st.sampled_from([2.0, 5.0]))
    genre = draw(st.sampled_from(["animation", "sports", "nature"]))
    return scheme, trace_seed, video_seed, chunk_duration, genre


@given(session_inputs())
@settings(max_examples=25, deadline=None)
def test_property_session_invariants(inputs):
    """For any scheme x video x trace combination:

    - every chunk is streamed exactly once, at a valid level;
    - time is monotone and downloads never outpace the link;
    - stalls, buffers, and data usage are non-negative and finite;
    - the summary metrics are internally consistent.
    """
    scheme, trace_seed, video_seed, chunk_duration, genre = inputs
    spec = VideoSpec(
        name="prop", title="P", genre=genre, source="ffmpeg", codec="h264",
        chunk_duration_s=chunk_duration, cap_ratio=2.0, duration_s=100.0,
    )
    video = build_video(spec, seed=video_seed)
    trace = synthesize_lte_traces(count=1, seed=trace_seed, duration_s=400.0)[0]
    algorithm = make_scheme(scheme)
    result = run_session(
        algorithm, video, TraceLink(trace),
        SessionConfig(startup_latency_s=6.0, max_buffer_s=60.0),
        include_quality=needs_quality_manifest(scheme),
    )

    assert result.num_chunks == video.num_chunks
    assert np.all((result.levels >= 0) & (result.levels < video.num_tracks))
    assert np.all(np.diff(result.download_finish_s) > 0)
    assert np.all(result.download_finish_s >= result.download_start_s)
    assert np.all(result.stall_s >= 0)
    assert np.all(result.buffer_after_s >= 0)
    assert np.all(result.buffer_after_s <= 60.0 + 1e-6)
    assert np.isfinite(result.data_usage_bits)

    metrics = summarize_session(result, video)
    assert 0.0 <= metrics.low_quality_fraction <= 1.0
    assert metrics.rebuffer_s == pytest.approx(result.total_stall_s)
    assert 0.0 <= metrics.mean_level <= video.num_tracks - 1
    assert metrics.q4_quality_mean <= 100.0
    assert metrics.data_usage_mb > 0.0


@given(
    scale=st.floats(min_value=0.5, max_value=3.0),
    seed=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=15, deadline=None)
def test_property_more_bandwidth_never_hurts_quality_much(scale, seed):
    """Scaling a trace up should not reduce CAVA's mean quality
    (weak monotonicity, small tolerance for control transients)."""
    spec = VideoSpec(
        name="mono", title="M", genre="animation", source="ffmpeg", codec="h264",
        chunk_duration_s=2.0, cap_ratio=2.0, duration_s=100.0,
    )
    video = build_video(spec, seed=0)
    trace = synthesize_lte_traces(count=1, seed=seed, duration_s=400.0)[0]
    base = run_session(make_scheme("CAVA"), video, TraceLink(trace))
    boosted = run_session(make_scheme("CAVA"), video, TraceLink(trace.scaled(1.0 + scale)))
    base_q = summarize_session(base, video).mean_quality
    boosted_q = summarize_session(boosted, video).mean_quality
    assert boosted_q >= base_q - 3.0
