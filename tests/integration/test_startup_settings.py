"""§6.1's startup-latency remark: the paper reports results for a 10 s
startup target and notes "results for other practical settings were
similar". Verify CAVA's metric vector is stable across practical
startup targets (one to three chunks' worth, per [46])."""

import numpy as np
import pytest

from repro.core.cava import cava_p123
from repro.network.link import TraceLink
from repro.player.metrics import summarize_session
from repro.player.session import SessionConfig, run_session

STARTUPS = (5.0, 10.0, 15.0)


@pytest.fixture(scope="module")
def startup_sweep(request):
    video = request.getfixturevalue("ed_ffmpeg_video")
    traces = request.getfixturevalue("lte_traces")
    classifier = request.getfixturevalue("ed_classifier")
    by_startup = {}
    for startup in STARTUPS:
        config = SessionConfig(startup_latency_s=startup, max_buffer_s=100.0)
        rows = [
            summarize_session(
                run_session(cava_p123(), video, TraceLink(trace), config),
                video, "vmaf_phone", classifier,
            )
            for trace in traces[:8]
        ]
        by_startup[startup] = rows
    return by_startup


class TestStartupRobustness:
    def test_q4_quality_stable(self, startup_sweep):
        means = {
            s: float(np.mean([r.q4_quality_mean for r in rows]))
            for s, rows in startup_sweep.items()
        }
        spread = max(means.values()) - min(means.values())
        assert spread < 3.0, means

    def test_rebuffering_stable(self, startup_sweep):
        for startup, rows in startup_sweep.items():
            assert float(np.mean([r.rebuffer_s for r in rows])) < 2.0, startup

    def test_startup_delay_tracks_target(self, startup_sweep):
        """The one thing that must change: a larger target takes longer
        to fill before playback begins."""
        delays = {
            s: float(np.mean([r.startup_delay_s for r in rows]))
            for s, rows in startup_sweep.items()
        }
        assert delays[5.0] < delays[10.0] < delays[15.0]
