"""Tests for trace-set analysis."""

import numpy as np
import pytest

from repro.network.analysis import (
    outage_fraction,
    segment_stationary,
    summarize_traces,
)
from repro.network.traces import NetworkTrace, synthesize_fcc_traces, synthesize_lte_traces


class TestOutageFraction:
    def test_no_outage(self):
        trace = NetworkTrace("t", 1.0, np.full(10, 5e6))
        assert outage_fraction(trace) == 0.0

    def test_half_outage(self):
        trace = NetworkTrace("t", 1.0, np.array([5e6, 1e3] * 5))
        assert outage_fraction(trace) == pytest.approx(0.5)

    def test_threshold_respected(self):
        trace = NetworkTrace("t", 1.0, np.full(4, 2e5))
        assert outage_fraction(trace, threshold_bps=1e5) == 0.0
        assert outage_fraction(trace, threshold_bps=5e5) == 1.0


class TestSummarize:
    def test_lte_summary_shape(self):
        summary = summarize_traces(synthesize_lte_traces(count=20, seed=0))
        assert summary.count == 20
        assert summary.mean_mbps_p10 < summary.mean_mbps_median < summary.mean_mbps_p90
        assert 0 <= summary.outage_fraction_mean < 0.3
        assert "traces" in summary.describe()

    def test_fcc_smoother(self):
        lte = summarize_traces(synthesize_lte_traces(count=20, seed=0))
        fcc = summarize_traces(synthesize_fcc_traces(count=20, seed=0))
        assert fcc.cov_median < lte.cov_median

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_traces([])

    def test_mixed_intervals_rejected(self):
        mixed = [
            NetworkTrace("a", 1.0, np.full(5, 1e6)),
            NetworkTrace("b", 5.0, np.full(5, 1e6)),
        ]
        with pytest.raises(ValueError, match="mixed"):
            summarize_traces(mixed)


class TestSegmentation:
    def test_constant_trace_one_segment(self):
        trace = NetworkTrace("t", 1.0, np.full(100, 3e6))
        segments = segment_stationary(trace)
        assert len(segments) == 1
        assert segments[0]["mean_bps"] == pytest.approx(3e6)
        assert segments[0]["end_s"] == 100.0

    def test_step_change_detected(self):
        trace = NetworkTrace("t", 1.0, np.concatenate([np.full(60, 1e6), np.full(60, 5e6)]))
        segments = segment_stationary(trace)
        assert len(segments) == 2
        assert segments[0]["mean_bps"] < segments[1]["mean_bps"]
        assert segments[0]["end_s"] == pytest.approx(60.0)

    def test_segments_cover_trace(self):
        trace = synthesize_lte_traces(count=1, seed=3)[0]
        segments = segment_stationary(trace)
        assert segments[0]["start_s"] == 0.0
        assert segments[-1]["end_s"] == pytest.approx(trace.duration_s)
        for left, right in zip(segments, segments[1:]):
            assert right["start_s"] == pytest.approx(left["end_s"])

    def test_lte_fragments_more_than_fcc(self):
        lte = synthesize_lte_traces(count=5, seed=0)
        fcc = synthesize_fcc_traces(count=5, seed=0)
        lte_rate = np.mean([len(segment_stationary(t)) / t.duration_s for t in lte])
        fcc_rate = np.mean([len(segment_stationary(t)) / t.duration_s for t in fcc])
        assert lte_rate > fcc_rate

    def test_bad_params_rejected(self):
        trace = NetworkTrace("t", 1.0, np.full(10, 1e6))
        with pytest.raises(ValueError):
            segment_stationary(trace, relative_change=5.0)
        with pytest.raises(ValueError):
            segment_stationary(trace, min_segment_intervals=0)
