"""Tests for repro.network.estimator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.estimator import (
    BatchHarmonicMeanEstimator,
    ControlledErrorEstimator,
    EwmaEstimator,
    HarmonicMeanEstimator,
    LastSampleEstimator,
)
from repro.util.rng import derive_rng


class TestHarmonicMean:
    def test_cold_start_conservative(self):
        estimator = HarmonicMeanEstimator()
        assert estimator.predict_bps(0.0) == pytest.approx(1e6)

    def test_window_of_five(self):
        estimator = HarmonicMeanEstimator(window=5)
        for rate in (1e6, 2e6, 4e6, 4e6, 4e6, 4e6):
            estimator.observe(rate * 2.0, 2.0, 0.0)  # throughput == rate
        # The first sample (1e6) fell out of the 5-sample window.
        expected = 5 / (1 / 2e6 + 4 / 4e6)
        assert estimator.predict_bps(0.0) == pytest.approx(expected)

    def test_outlier_resistant(self):
        estimator = HarmonicMeanEstimator()
        for _ in range(4):
            estimator.observe(2e6, 1.0, 0.0)
        estimator.observe(500e6, 1.0, 0.0)  # one spike
        assert estimator.predict_bps(0.0) < 3e6

    def test_reset(self):
        estimator = HarmonicMeanEstimator()
        estimator.observe(8e6, 1.0, 0.0)
        estimator.reset()
        assert estimator.predict_bps(0.0) == pytest.approx(1e6)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(window=0)

    def test_rejects_bad_observation(self):
        with pytest.raises(ValueError):
            HarmonicMeanEstimator().observe(0.0, 1.0, 0.0)


#: Strictly positive finite sizes/durations spanning the full float
#: range, including denormals — the regime a fleet session hits when it
#: is admitted at a shared bottleneck and immediately throttled to a
#: near-zero share (one tiny chunk over an enormous wall-clock window).
_positive_floats = st.floats(
    min_value=0.0,
    max_value=1e308,
    exclude_min=True,
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=True,
)


class TestWarmupHardening:
    """Warm-up / starvation paths: predictions must stay positive finite."""

    def test_zero_share_sample_stays_positive_finite(self):
        # Duration so large the throughput quotient is denormal; the old
        # fold overflowed its reciprocal to inf and "predicted" 0.0.
        # Now the sample is clamped into the normal range and the
        # prediction is an honest, tiny — but strictly positive finite —
        # bandwidth, so downstream `size / bandwidth` math stays defined.
        estimator = HarmonicMeanEstimator()
        estimator.observe(1e-300, 1e20, 0.0)
        predicted = estimator.predict_bps(0.0)
        assert predicted > 0.0
        assert math.isfinite(predicted)
        assert predicted < 1.0

    @given(size=_positive_floats, duration=_positive_floats)
    @settings(max_examples=200, deadline=None)
    def test_single_sample_history_is_positive_finite(self, size, duration):
        estimator = HarmonicMeanEstimator()
        estimator.observe(size, duration, 0.0)
        predicted = estimator.predict_bps(0.0)
        assert predicted > 0.0
        assert math.isfinite(predicted)

    @given(
        samples=st.lists(
            st.tuples(_positive_floats, _positive_floats), min_size=0, max_size=12
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_any_history_is_positive_finite(self, samples):
        estimator = HarmonicMeanEstimator()
        for size, duration in samples:
            estimator.observe(size, duration, 0.0)
        predicted = estimator.predict_bps(0.0)
        assert predicted > 0.0
        assert math.isfinite(predicted)

    def test_empty_history_returns_initial(self):
        estimator = HarmonicMeanEstimator()
        assert estimator.predict_bps(0.0) == estimator.initial_estimate_bps

    def test_batch_rejects_zero_duration(self):
        estimator = BatchHarmonicMeanEstimator(lanes=2)
        with pytest.raises(ValueError):
            estimator.observe(np.array([1e6, 1e6]), np.array([1.0, 0.0]))

    def test_batch_rejects_zero_size(self):
        estimator = BatchHarmonicMeanEstimator(lanes=2)
        with pytest.raises(ValueError):
            estimator.observe(np.array([0.0, 1e6]), np.array([1.0, 1.0]))

    def test_batch_zero_share_lane_is_lane_local(self):
        estimator = BatchHarmonicMeanEstimator(lanes=2)
        estimator.observe(np.array([1e-300, 2e6]), np.array([1e20, 1.0]))
        predicted = estimator.predict_bps()
        # The starved lane degrades to a tiny positive estimate without
        # disturbing the healthy lane's bit-exact sample.
        assert 0.0 < predicted[0] < 1.0
        assert np.isfinite(predicted[0])
        assert predicted[1] == pytest.approx(2e6)

    @given(
        sizes=st.lists(_positive_floats, min_size=3, max_size=3),
        durations=st.lists(_positive_floats, min_size=3, max_size=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_batch_single_sample_history_positive_finite(self, sizes, durations):
        estimator = BatchHarmonicMeanEstimator(lanes=3)
        with np.errstate(over="ignore", under="ignore"):
            estimator.observe(np.asarray(sizes), np.asarray(durations))
            predicted = estimator.predict_bps()
        assert np.all(predicted > 0.0)
        assert np.all(np.isfinite(predicted))

    def test_batch_empty_history_returns_initial(self):
        estimator = BatchHarmonicMeanEstimator(lanes=4)
        assert np.all(
            estimator.predict_bps() == estimator.initial_estimate_bps
        )


class TestEwma:
    def test_converges_to_constant_rate(self):
        estimator = EwmaEstimator(alpha=0.5)
        for _ in range(20):
            estimator.observe(3e6, 1.0, 0.0)
        assert estimator.predict_bps(0.0) == pytest.approx(3e6)

    def test_first_sample_taken_whole(self):
        estimator = EwmaEstimator(alpha=0.1)
        estimator.observe(5e6, 1.0, 0.0)
        assert estimator.predict_bps(0.0) == pytest.approx(5e6)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)


class TestLastSample:
    def test_tracks_latest(self):
        estimator = LastSampleEstimator()
        estimator.observe(1e6, 1.0, 0.0)
        estimator.observe(9e6, 1.0, 0.0)
        assert estimator.predict_bps(0.0) == pytest.approx(9e6)


class TestControlledError:
    def test_zero_error_is_oracle(self):
        estimator = ControlledErrorEstimator(
            true_bandwidth=lambda t: 4e6, err=0.0, rng=derive_rng(0, "e")
        )
        assert estimator.predict_bps(10.0) == pytest.approx(4e6)

    def test_error_band_respected(self):
        estimator = ControlledErrorEstimator(
            true_bandwidth=lambda t: 4e6, err=0.5, rng=derive_rng(0, "e")
        )
        predictions = np.array([estimator.predict_bps(0.0) for _ in range(500)])
        assert predictions.min() >= 2e6 - 1e-6
        assert predictions.max() <= 6e6 + 1e-6
        # The perturbation actually spreads across the band.
        assert predictions.std() > 0.1e6

    def test_time_dependent_truth(self):
        estimator = ControlledErrorEstimator(
            true_bandwidth=lambda t: 1e6 * (1 + t), err=0.0, rng=derive_rng(0, "e")
        )
        assert estimator.predict_bps(1.0) == pytest.approx(2e6)
        assert estimator.predict_bps(3.0) == pytest.approx(4e6)

    def test_nonpositive_truth_falls_back(self):
        estimator = ControlledErrorEstimator(
            true_bandwidth=lambda t: 0.0, err=0.25, rng=derive_rng(0, "e")
        )
        assert estimator.predict_bps(0.0) == pytest.approx(1e6)

    def test_err_bounds(self):
        with pytest.raises(ValueError):
            ControlledErrorEstimator(lambda t: 1e6, err=1.5, rng=derive_rng(0, "e"))
