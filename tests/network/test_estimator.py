"""Tests for repro.network.estimator."""

import numpy as np
import pytest

from repro.network.estimator import (
    ControlledErrorEstimator,
    EwmaEstimator,
    HarmonicMeanEstimator,
    LastSampleEstimator,
)
from repro.util.rng import derive_rng


class TestHarmonicMean:
    def test_cold_start_conservative(self):
        estimator = HarmonicMeanEstimator()
        assert estimator.predict_bps(0.0) == pytest.approx(1e6)

    def test_window_of_five(self):
        estimator = HarmonicMeanEstimator(window=5)
        for rate in (1e6, 2e6, 4e6, 4e6, 4e6, 4e6):
            estimator.observe(rate * 2.0, 2.0, 0.0)  # throughput == rate
        # The first sample (1e6) fell out of the 5-sample window.
        expected = 5 / (1 / 2e6 + 4 / 4e6)
        assert estimator.predict_bps(0.0) == pytest.approx(expected)

    def test_outlier_resistant(self):
        estimator = HarmonicMeanEstimator()
        for _ in range(4):
            estimator.observe(2e6, 1.0, 0.0)
        estimator.observe(500e6, 1.0, 0.0)  # one spike
        assert estimator.predict_bps(0.0) < 3e6

    def test_reset(self):
        estimator = HarmonicMeanEstimator()
        estimator.observe(8e6, 1.0, 0.0)
        estimator.reset()
        assert estimator.predict_bps(0.0) == pytest.approx(1e6)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(window=0)

    def test_rejects_bad_observation(self):
        with pytest.raises(ValueError):
            HarmonicMeanEstimator().observe(0.0, 1.0, 0.0)


class TestEwma:
    def test_converges_to_constant_rate(self):
        estimator = EwmaEstimator(alpha=0.5)
        for _ in range(20):
            estimator.observe(3e6, 1.0, 0.0)
        assert estimator.predict_bps(0.0) == pytest.approx(3e6)

    def test_first_sample_taken_whole(self):
        estimator = EwmaEstimator(alpha=0.1)
        estimator.observe(5e6, 1.0, 0.0)
        assert estimator.predict_bps(0.0) == pytest.approx(5e6)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=1.5)


class TestLastSample:
    def test_tracks_latest(self):
        estimator = LastSampleEstimator()
        estimator.observe(1e6, 1.0, 0.0)
        estimator.observe(9e6, 1.0, 0.0)
        assert estimator.predict_bps(0.0) == pytest.approx(9e6)


class TestControlledError:
    def test_zero_error_is_oracle(self):
        estimator = ControlledErrorEstimator(
            true_bandwidth=lambda t: 4e6, err=0.0, rng=derive_rng(0, "e")
        )
        assert estimator.predict_bps(10.0) == pytest.approx(4e6)

    def test_error_band_respected(self):
        estimator = ControlledErrorEstimator(
            true_bandwidth=lambda t: 4e6, err=0.5, rng=derive_rng(0, "e")
        )
        predictions = np.array([estimator.predict_bps(0.0) for _ in range(500)])
        assert predictions.min() >= 2e6 - 1e-6
        assert predictions.max() <= 6e6 + 1e-6
        # The perturbation actually spreads across the band.
        assert predictions.std() > 0.1e6

    def test_time_dependent_truth(self):
        estimator = ControlledErrorEstimator(
            true_bandwidth=lambda t: 1e6 * (1 + t), err=0.0, rng=derive_rng(0, "e")
        )
        assert estimator.predict_bps(1.0) == pytest.approx(2e6)
        assert estimator.predict_bps(3.0) == pytest.approx(4e6)

    def test_nonpositive_truth_falls_back(self):
        estimator = ControlledErrorEstimator(
            true_bandwidth=lambda t: 0.0, err=0.25, rng=derive_rng(0, "e")
        )
        assert estimator.predict_bps(0.0) == pytest.approx(1e6)

    def test_err_bounds(self):
        with pytest.raises(ValueError):
            ControlledErrorEstimator(lambda t: 1e6, err=1.5, rng=derive_rng(0, "e"))
