"""Tests for repro.network.link: the fluid download model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import MIN_DOWNLOAD_DURATION_S, DownloadResult, TraceLink
from repro.network.traces import NetworkTrace, synthesize_lte_traces


def constant_link(bps=1e6, intervals=10, interval_s=1.0):
    return TraceLink(NetworkTrace("c", interval_s, np.full(intervals, bps)))


class TestDownload:
    def test_constant_rate_timing(self):
        link = constant_link(bps=1e6)
        result = link.download(2e6, start_s=0.0)
        assert result.finish_s == pytest.approx(2.0)
        assert result.duration_s == pytest.approx(2.0)
        assert result.throughput_bps == pytest.approx(1e6)

    def test_mid_interval_start(self):
        link = constant_link(bps=1e6)
        result = link.download(5e5, start_s=0.25)
        assert result.finish_s == pytest.approx(0.75)

    def test_rate_change_mid_download(self):
        trace = NetworkTrace("v", 1.0, np.array([1e6, 3e6] * 5))
        link = TraceLink(trace)
        # 2.5 Mb: 1 Mb in first second, 1.5 Mb in 0.5 s of the second.
        result = link.download(2.5e6, start_s=0.0)
        assert result.finish_s == pytest.approx(1.5)

    def test_wraps_past_trace_end(self):
        link = constant_link(bps=1e6, intervals=2)  # 2-second period
        result = link.download(5e6, start_s=0.0)
        assert result.finish_s == pytest.approx(5.0)

    def test_start_past_trace_end(self):
        link = constant_link(bps=1e6, intervals=2)
        result = link.download(1e6, start_s=7.5)
        assert result.finish_s == pytest.approx(8.5)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            constant_link().download(0.0, 0.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            constant_link().download(1e6, -1.0)


class TestBitsInWindow:
    def test_constant(self):
        link = constant_link(bps=2e6)
        assert link.bits_in_window(0.0, 3.0) == pytest.approx(6e6)

    def test_partial_intervals(self):
        trace = NetworkTrace("v", 1.0, np.array([1e6, 3e6]))
        link = TraceLink(trace)
        assert link.bits_in_window(0.5, 1.5) == pytest.approx(0.5e6 + 1.5e6)

    def test_reverse_window_rejected(self):
        with pytest.raises(ValueError):
            constant_link().bits_in_window(2.0, 1.0)

    def test_average_bandwidth(self):
        trace = NetworkTrace("v", 1.0, np.array([1e6, 3e6]))
        link = TraceLink(trace)
        assert link.average_bandwidth(0.0, 2.0) == pytest.approx(2e6)


class TestPeriodBoundary:
    """Regression: float divmod at period boundaries.

    With a non-representable interval (1/3 s) the interval index
    ``remainder / interval`` can round to *exactly* ``num_intervals`` —
    one past the throughput table — at times infinitesimally below a
    period boundary. The clamp must keep the cumulative value continuous
    (equal to the full-period total), not crash or overshoot.
    """

    def test_index_lands_exactly_on_table_edge(self):
        trace = NetworkTrace("thirds", 1.0 / 3.0, np.array([1e6, 2e6, 3e6]))
        link = TraceLink(trace)
        t = 0.9999999999999999  # < one period, but index rounds to 3.0
        bits = link._cumulative_at(t)
        assert bits == pytest.approx(link._bits_per_period, rel=1e-12)
        # windows touching the boundary stay well-defined and monotone
        assert link.bits_in_window(0.0, t) <= link.bits_in_window(0.0, 1.0)

    @given(
        num_intervals=st.integers(min_value=1, max_value=9),
        periods=st.integers(min_value=0, max_value=5),
        steps_below=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_continuous_at_period_boundaries(
        self, num_intervals, periods, steps_below
    ):
        interval = 1.0 / num_intervals  # non-representable for 3, 6, 7, 9
        trace = NetworkTrace(
            "b", interval, np.linspace(1e6, 2e6, num_intervals)
        )
        link = TraceLink(trace)
        t = periods * trace.duration_s
        for _ in range(steps_below):
            t = float(np.nextafter(t, -np.inf))
        if t < 0:
            return
        expected = periods * link._bits_per_period
        assert link._cumulative_at(t) == pytest.approx(expected, rel=1e-9)

    def test_download_of_exact_whole_periods(self):
        # size == k full periods of bits exercises the within==0 branch
        # (divmod lands exactly on a period multiple)
        trace = NetworkTrace("thirds", 1.0 / 3.0, np.array([1e6, 2e6, 3e6]))
        link = TraceLink(trace)
        result = link.download(2e6 * 3, 0.0)  # 3 periods of bits
        assert result.finish_s == pytest.approx(3 * trace.duration_s, rel=1e-9)


class TestZeroDurationFloor:
    def test_throughput_always_finite(self):
        result = DownloadResult(start_s=5.0, finish_s=5.0, size_bits=100.0)
        assert np.isfinite(result.throughput_bps)
        assert result.throughput_bps == 100.0 / MIN_DOWNLOAD_DURATION_S

    def test_tiny_download_has_positive_duration(self):
        link = constant_link(bps=1e12)
        result = link.download(1e-6, start_s=0.0)
        assert result.duration_s > 0
        assert np.isfinite(result.throughput_bps)

    def test_tiny_download_at_large_start_time(self):
        # At large t the fluid integral can round finish to exactly
        # start; the floor must still produce a strictly later finish.
        link = constant_link(bps=1e9, intervals=4)
        start = 1e9 + 0.125
        result = link.download(1e-3, start_s=start)
        assert result.finish_s > start
        assert np.isfinite(result.throughput_bps)


class TestZeroRateTraces:
    """Traces with zero-throughput runs (real captures, injected outages)."""

    def outage_link(self):
        return TraceLink(NetworkTrace("z", 1.0, np.array([1e6, 0.0, 0.0, 1e6])))

    def test_download_across_consecutive_zero_intervals(self):
        # 1.5 Mb: 1 Mb in [0,1), outage [1,3), 0.5 Mb in [3,3.5)
        result = self.outage_link().download(1.5e6, 0.0)
        assert result.finish_s == pytest.approx(3.5)

    def test_download_finishing_exactly_at_outage_boundary(self):
        # The last bit lands exactly at t=1.0; earliest-crossing
        # semantics must not absorb the two-second outage after it.
        result = self.outage_link().download(1e6, 0.0)
        assert result.finish_s == pytest.approx(1.0)
        assert result.finish_s < 2.0

    def test_download_starting_inside_outage(self):
        result = self.outage_link().download(1e6, 1.5)
        assert result.finish_s == pytest.approx(4.0)

    def test_download_wraps_through_outages(self):
        # 2 Mb per 4 s period: 4 Mb by t=8, then the last 1 Mb fills the
        # whole [8, 9) interval at 1 Mbps
        result = self.outage_link().download(5e6, 0.0)
        assert result.finish_s == pytest.approx(9.0)

    def test_bits_in_window_over_all_outage_window(self):
        link = self.outage_link()
        assert link.bits_in_window(1.0, 3.0) == 0.0
        assert link.bits_in_window(1.25, 2.75) == 0.0
        assert link.average_bandwidth(1.0, 2.0) == 0.0

    def test_zero_leading_interval(self):
        link = TraceLink(NetworkTrace("lead", 1.0, np.array([0.0, 1e6])))
        result = link.download(5e5, 0.0)
        assert result.finish_s == pytest.approx(1.5)

    def test_all_zero_trace_rejected(self):
        with pytest.raises(ValueError, match="zero bits"):
            TraceLink(NetworkTrace("dead", 1.0, np.zeros(4)))

    @given(
        seed=st.integers(min_value=0, max_value=50),
        size_mb=st.floats(min_value=0.01, max_value=10.0),
        start=st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_download_inverts_window_with_outages(self, seed, size_mb, start):
        trace = synthesize_lte_traces(count=1, seed=seed, duration_s=120.0)[0]
        throughputs = trace.throughputs_bps.copy()
        rng = np.random.default_rng(seed)
        for index in rng.integers(0, throughputs.size, size=6):
            throughputs[index : index + 5] = 0.0
        if not throughputs.any():
            return
        link = TraceLink(trace.with_throughputs(throughputs))
        size = size_mb * 1e6
        result = link.download(size, start)
        assert result.finish_s > start
        delivered = link.bits_in_window(start, result.finish_s)
        assert delivered == pytest.approx(size, rel=1e-6, abs=1.0)


class TestConsistency:
    """download() and bits_in_window() must agree with each other."""

    @given(
        seed=st.integers(min_value=0, max_value=50),
        size_mb=st.floats(min_value=0.01, max_value=30.0),
        start=st.floats(min_value=0.0, max_value=2000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_download_inverts_window(self, seed, size_mb, start):
        trace = synthesize_lte_traces(count=1, seed=seed, duration_s=120.0)[0]
        link = TraceLink(trace)
        size = size_mb * 1e6
        result = link.download(size, start)
        assert result.finish_s >= start
        delivered = link.bits_in_window(start, result.finish_s)
        assert delivered == pytest.approx(size, rel=1e-6, abs=1.0)

    @given(
        seed=st.integers(min_value=0, max_value=50),
        start=st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_in_size(self, seed, start):
        trace = synthesize_lte_traces(count=1, seed=seed, duration_s=120.0)[0]
        link = TraceLink(trace)
        small = link.download(1e5, start).finish_s
        large = link.download(1e6, start).finish_s
        assert large >= small
