"""Tests for repro.network.link: the fluid download model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace, synthesize_lte_traces


def constant_link(bps=1e6, intervals=10, interval_s=1.0):
    return TraceLink(NetworkTrace("c", interval_s, np.full(intervals, bps)))


class TestDownload:
    def test_constant_rate_timing(self):
        link = constant_link(bps=1e6)
        result = link.download(2e6, start_s=0.0)
        assert result.finish_s == pytest.approx(2.0)
        assert result.duration_s == pytest.approx(2.0)
        assert result.throughput_bps == pytest.approx(1e6)

    def test_mid_interval_start(self):
        link = constant_link(bps=1e6)
        result = link.download(5e5, start_s=0.25)
        assert result.finish_s == pytest.approx(0.75)

    def test_rate_change_mid_download(self):
        trace = NetworkTrace("v", 1.0, np.array([1e6, 3e6] * 5))
        link = TraceLink(trace)
        # 2.5 Mb: 1 Mb in first second, 1.5 Mb in 0.5 s of the second.
        result = link.download(2.5e6, start_s=0.0)
        assert result.finish_s == pytest.approx(1.5)

    def test_wraps_past_trace_end(self):
        link = constant_link(bps=1e6, intervals=2)  # 2-second period
        result = link.download(5e6, start_s=0.0)
        assert result.finish_s == pytest.approx(5.0)

    def test_start_past_trace_end(self):
        link = constant_link(bps=1e6, intervals=2)
        result = link.download(1e6, start_s=7.5)
        assert result.finish_s == pytest.approx(8.5)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            constant_link().download(0.0, 0.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            constant_link().download(1e6, -1.0)


class TestBitsInWindow:
    def test_constant(self):
        link = constant_link(bps=2e6)
        assert link.bits_in_window(0.0, 3.0) == pytest.approx(6e6)

    def test_partial_intervals(self):
        trace = NetworkTrace("v", 1.0, np.array([1e6, 3e6]))
        link = TraceLink(trace)
        assert link.bits_in_window(0.5, 1.5) == pytest.approx(0.5e6 + 1.5e6)

    def test_reverse_window_rejected(self):
        with pytest.raises(ValueError):
            constant_link().bits_in_window(2.0, 1.0)

    def test_average_bandwidth(self):
        trace = NetworkTrace("v", 1.0, np.array([1e6, 3e6]))
        link = TraceLink(trace)
        assert link.average_bandwidth(0.0, 2.0) == pytest.approx(2e6)


class TestConsistency:
    """download() and bits_in_window() must agree with each other."""

    @given(
        seed=st.integers(min_value=0, max_value=50),
        size_mb=st.floats(min_value=0.01, max_value=30.0),
        start=st.floats(min_value=0.0, max_value=2000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_download_inverts_window(self, seed, size_mb, start):
        trace = synthesize_lte_traces(count=1, seed=seed, duration_s=120.0)[0]
        link = TraceLink(trace)
        size = size_mb * 1e6
        result = link.download(size, start)
        assert result.finish_s >= start
        delivered = link.bits_in_window(start, result.finish_s)
        assert delivered == pytest.approx(size, rel=1e-6, abs=1.0)

    @given(
        seed=st.integers(min_value=0, max_value=50),
        start=st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_in_size(self, seed, start):
        trace = synthesize_lte_traces(count=1, seed=seed, duration_s=120.0)[0]
        link = TraceLink(trace)
        small = link.download(1e5, start).finish_s
        large = link.download(1e6, start).finish_s
        assert large >= small
