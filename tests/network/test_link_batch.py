"""Bit-identity of the stacked batch data plane vs the scalar link.

The lockstep batch engine's whole correctness story rests on
``StackedLinks.download_finish`` producing, per lane, the exact double
``TraceLink.download`` would: golden sweep snapshots are only an oracle
for the trace sets they cover, so this module property-tests the
contract over randomized traces, sizes, and start times — including the
branches the fluid model makes interesting (zero-rate intervals, period
wrap, interval boundaries, and the positive-duration floor).

Equality below is ``==`` on float64, never approx: one ULP of drift in a
finish time cascades into different chunk decisions downstream.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import MIN_DOWNLOAD_DURATION_S, StackedLinks, TraceLink
from repro.network.traces import NetworkTrace

# Throughputs mix zero-rate intervals (queued downloads) with realistic
# rates; a trace of only zeros never delivers a bit, so at least one
# interval must be positive.
_rate = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e4, max_value=1e8, allow_nan=False, allow_infinity=False),
)
_timeline = st.lists(_rate, min_size=1, max_size=8).filter(
    lambda rates: any(r > 0 for r in rates)
)
_lane = st.tuples(
    _timeline,
    st.floats(min_value=1.0, max_value=1e8, allow_nan=False),  # size_bits
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),  # start_s
)


def _assert_stack_matches_scalar(links, sizes, starts):
    stacked = StackedLinks(links)
    batch = stacked.download_finish(np.asarray(sizes, float), np.asarray(starts, float))
    scalar = [
        link.download(size, start).finish_s
        for link, size, start in zip(links, sizes, starts)
    ]
    assert batch.tolist() == scalar


@settings(max_examples=200, deadline=None)
@given(
    lanes=st.lists(_lane, min_size=1, max_size=6),
    interval_s=st.sampled_from([0.25, 0.5, 1.0, 2.0]),
)
def test_download_finish_bit_identical_random(lanes, interval_s):
    links = [
        TraceLink(NetworkTrace(f"t{i}", interval_s, np.array(rates)))
        for i, (rates, _, _) in enumerate(lanes)
    ]
    sizes = [size for _, size, _ in lanes]
    starts = [start for _, _, start in lanes]
    _assert_stack_matches_scalar(links, sizes, starts)


@settings(max_examples=100, deadline=None)
@given(
    rates=_timeline,
    size=st.floats(min_value=1.0, max_value=1e8, allow_nan=False),
    period_count=st.integers(min_value=0, max_value=5),
    boundary_index=st.integers(min_value=0, max_value=8),
)
def test_download_finish_bit_identical_at_boundaries(
    rates, size, period_count, boundary_index
):
    """Starts pinned to exact interval and period boundaries.

    These are where the scalar path's branch structure lives — the wrap
    fold, the ``remainder >= period`` guard, the already-crossed branch
    of the offset select — so the property test forces them explicitly
    instead of hoping random floats land there.
    """
    interval_s = 1.0
    link = TraceLink(NetworkTrace("b", interval_s, np.array(rates)))
    period = len(rates) * interval_s
    start = period_count * period + (boundary_index % len(rates)) * interval_s
    _assert_stack_matches_scalar([link], [size], [start])


def test_zero_rate_run_crossed_exactly():
    # The download starts inside a zero-rate run and completes in the
    # next positive interval: the zero-rate branch must advance to the
    # interval end, not divide by the rate.
    trace = NetworkTrace("z", 1.0, np.array([1e6, 0.0, 0.0, 2e6]))
    _assert_stack_matches_scalar(
        [TraceLink(trace)] * 3, [1.5e6, 2e6, 3e6], [0.5, 1.25, 2.0]
    )


def test_period_boundary_and_huge_start():
    trace = NetworkTrace("p", 0.5, np.array([2e6, 1e6]))
    links = [TraceLink(trace)] * 4
    # Start exactly on a period boundary, far past the trace end, and on
    # an interval edge; the last lane exercises the duration floor.
    sizes = [1e6, 2.5e6, 1e6, 1e-0]
    starts = [1.0, 1e4, 10.5, 3.0]
    _assert_stack_matches_scalar(links, sizes, starts)


def test_duration_floor_applies_per_lane():
    trace = NetworkTrace("f", 1.0, np.array([1e9]))
    links = [TraceLink(trace)] * 2
    stacked = StackedLinks(links)
    sizes = np.array([1.0, 1e9])
    starts = np.array([0.0, 0.0])
    batch = stacked.download_finish(sizes, starts)
    assert batch[0] == links[0].download(1.0, 0.0).finish_s
    assert batch[0] >= MIN_DOWNLOAD_DURATION_S
    assert batch[1] == links[1].download(1e9, 0.0).finish_s


def test_ragged_lane_widths_padding_inert():
    # Lanes with different table widths share one padded matrix; the
    # +inf padding must never win a crossing search for the short lane.
    short = TraceLink(NetworkTrace("s", 1.0, np.array([1e6])))
    long = TraceLink(NetworkTrace("l", 1.0, np.array([5e5] * 7 + [0.0])))
    _assert_stack_matches_scalar([short, long], [3e6, 4.2e6], [0.75, 6.5])
