"""Bit-identity of the scalar link fast path against numpy references.

``TraceLink.download`` / ``_cumulative_at`` run on Python floats with
``bisect``; these tests pin them to the vectorized numpy formulations
(``_cumulative_at_array``, ``np.searchsorted``) with exact equality,
and check the estimator's scalar harmonic-mean fast path against the
shared :func:`~repro.util.stats.harmonic_mean` helper.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.estimator import HarmonicMeanEstimator
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace, synthesize_lte_traces
from repro.util.stats import harmonic_mean


def _trace_with_outage(seed=0):
    rng = np.random.default_rng(seed)
    rates = rng.uniform(5e5, 2e7, size=30)
    rates[10:13] = 0.0  # zero-rate run: the outage edge cases
    return NetworkTrace(name="outage", throughputs_bps=rates, interval_s=1.0)


class TestCumulativeScalarVsVector:
    @given(
        t=st.floats(min_value=0.0, max_value=500.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_scalar_equals_vector_table(self, t, seed):
        link = TraceLink(_trace_with_outage(seed))
        scalar = link._cumulative_at(t)
        vector = float(link._cumulative_at_array(np.array([t]))[0])
        assert scalar == vector

    def test_bits_in_windows_matches_scalar_loop(self):
        link = TraceLink(synthesize_lte_traces(count=1, seed=4)[0])
        starts = np.array([0.0, 3.7, 29.9, 61.2, 100.0])
        ends = starts + np.array([1.0, 0.1, 30.0, 5.5, 250.0])
        vectorized = link.bits_in_windows(starts, ends)
        scalars = [link.bits_in_window(s, e) for s, e in zip(starts, ends)]
        assert vectorized.tolist() == scalars

    def test_bits_in_windows_validates(self):
        link = TraceLink(_trace_with_outage())
        with pytest.raises(ValueError):
            link.bits_in_windows(np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            link.bits_in_windows(np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            link.bits_in_windows(np.array([2.0]), np.array([1.0]))


class TestDownloadBisectMatchesSearchsorted:
    @given(
        size=st.floats(min_value=1e2, max_value=5e8),
        start=st.floats(min_value=0.0, max_value=400.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_crossing_interval_identical(self, size, start, seed):
        link = TraceLink(_trace_with_outage(seed))
        target = link._cumulative_at(start) + size
        _, within = divmod(target, link._bits_per_period)
        from bisect import bisect_left

        assert bisect_left(link._cumulative_list, within) == int(
            np.searchsorted(link._cumulative_bits, within, side="left")
        )

    @given(
        size=st.floats(min_value=1e2, max_value=5e8),
        start=st.floats(min_value=0.0, max_value=400.0),
        seed=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_download_invariants(self, size, start, seed):
        link = TraceLink(_trace_with_outage(seed))
        result = link.download(size, start)
        assert result.finish_s > result.start_s == start
        assert result.size_bits == size
        # The fluid model must deliver exactly the requested bits by the
        # finish time (up to the duration floor's rounding).
        delivered = link.bits_in_window(start, result.finish_s)
        assert delivered == pytest.approx(size, rel=1e-6, abs=1.0)


class TestHarmonicMeanFastPath:
    @given(
        samples=st.lists(
            st.floats(min_value=1e3, max_value=1e9), min_size=1, max_size=7
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_scalar_window_matches_helper_exactly(self, samples):
        estimator = HarmonicMeanEstimator(window=7)
        for k, sample in enumerate(samples):
            estimator.observe(sample, 1.0, float(k))
        # observe() divides by 1.0, which is exact, so the deque holds
        # the samples themselves.
        assert estimator.predict_bps(99.0) == harmonic_mean(samples)

    def test_wide_window_delegates_to_helper(self):
        estimator = HarmonicMeanEstimator(window=12)
        samples = [1e6 + 1e4 * k for k in range(12)]
        for k, sample in enumerate(samples):
            estimator.observe(sample, 1.0, float(k))
        assert estimator.predict_bps(99.0) == harmonic_mean(samples)

    def test_rejects_bad_observations(self):
        estimator = HarmonicMeanEstimator()
        with pytest.raises(ValueError):
            estimator.observe(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            estimator.observe(1e6, 0.0, 0.0)
        with pytest.raises(ValueError):
            estimator.observe(float("nan"), 1.0, 0.0)
        with pytest.raises(ValueError):
            estimator.observe(1e6, float("inf"), 0.0)
