"""Processor-sharing semantics of :class:`repro.network.shared.SharedLink`."""

import numpy as np
import pytest

from repro.network.link import TraceLink
from repro.network.shared import _MIN_COMPACT_SIZE, SharedLink
from repro.network.traces import NetworkTrace


def constant_trace(mbps, duration_s=4000.0):
    return NetworkTrace(f"const-{mbps}", 1.0, np.full(int(duration_s), mbps * 1e6))


def drain_all(shared):
    """Run every admitted flow to completion; return [(flow, finish)]."""
    finishes = []
    while True:
        nxt = shared.next_completion()
        if nxt is None:
            return finishes
        finish, flow_id = nxt
        shared.advance_to(finish)
        shared.complete(flow_id)
        finishes.append((flow_id, finish))


class TestSingleFlow:
    def test_matches_private_link_exactly(self, one_lte_trace):
        """One flow at a shared edge == a private TraceLink, bitwise."""
        private = TraceLink(one_lte_trace)
        shared = SharedLink(TraceLink(one_lte_trace))
        now = 0.0
        for size in (4e6, 1e6, 9e6, 2.5e6):
            expected = private.download(size, now).finish_s
            shared.advance_to(now)
            shared.start("s", size)
            finish, flow_id = shared.next_completion()
            assert flow_id == "s"
            assert finish == expected  # bit-identical, not approx
            shared.advance_to(finish)
            shared.complete("s")
            now = finish

    def test_idle_link_delivers_nothing(self):
        shared = SharedLink(TraceLink(constant_trace(10.0)))
        shared.advance_to(50.0)
        assert shared.delivered_bits == 0.0
        assert shared.next_completion() is None


class TestEqualSplit:
    def test_two_equal_flows_halve_throughput(self):
        # 8 Mbps edge, two 8 Mb downloads admitted together: each sees
        # 4 Mbps and finishes at t=2.
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        shared.start("a", 8e6)
        shared.start("b", 8e6)
        finishes = dict(drain_all(shared))
        assert finishes["a"] == pytest.approx(2.0)
        assert finishes["b"] == pytest.approx(2.0)

    def test_smaller_flow_exits_first_and_frees_capacity(self):
        # 8 Mbps edge: A needs 4 Mb, B needs 12 Mb, both admitted at 0.
        # Shared phase: A done after receiving 4 Mb at 4 Mbps -> t=1.
        # B then has 8 Mb left at full rate -> t = 1 + 1 = 2.
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        shared.start("a", 4e6)
        shared.start("b", 12e6)
        finishes = dict(drain_all(shared))
        assert finishes["a"] == pytest.approx(1.0)
        assert finishes["b"] == pytest.approx(2.0)

    def test_late_joiner_slows_in_flight_download(self):
        # 8 Mbps edge: A (12 Mb) alone for 1 s (8 Mb served), then B
        # (8 Mb) joins. A needs 4 Mb more: shared at 4 Mbps -> A done at
        # t=2, by which point B has 4 Mb; its last 4 Mb run at the full
        # 8 Mbps -> B done at t=2.5.
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        shared.start("a", 12e6)
        shared.advance_to(1.0)
        shared.start("b", 8e6)
        finishes = dict(drain_all(shared))
        assert finishes["a"] == pytest.approx(2.0)
        assert finishes["b"] == pytest.approx(2.5)

    def test_conservation_of_delivered_bits(self, one_lte_trace):
        shared = SharedLink(TraceLink(one_lte_trace))
        sizes = {"a": 5e6, "b": 3e6, "c": 7.5e6}
        for flow, size in sizes.items():
            shared.start(flow, size)
        drain_all(shared)
        # The edge delivered exactly the sum of the flow sizes (to
        # float/bisection tolerance; the trace may overshoot by the
        # final interval's resolution).
        assert shared.delivered_bits == pytest.approx(sum(sizes.values()), rel=1e-6)


class TestContract:
    def test_rejects_duplicate_flow(self):
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        shared.start("a", 1e6)
        with pytest.raises(ValueError):
            shared.start("a", 1e6)

    def test_rejects_nonpositive_size(self):
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        with pytest.raises(ValueError):
            shared.start("a", 0.0)

    def test_rejects_backward_advance(self):
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        shared.advance_to(5.0)
        with pytest.raises(ValueError):
            shared.advance_to(4.0)

    def test_cancel_removes_flow(self):
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        shared.start("a", 8e6)
        shared.start("b", 8e6)
        shared.cancel("a")
        assert shared.n_active == 1
        finishes = dict(drain_all(shared))
        assert "a" not in finishes
        assert finishes["b"] == pytest.approx(1.0)

    def test_reenqueue_after_complete_is_clean(self):
        """A flow id may be reused chunk after chunk; stale heap entries
        must not resurface."""
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        for _ in range(5):
            shared.start("s", 4e6)
            finish, flow_id = shared.next_completion()
            assert flow_id == "s"
            shared.advance_to(finish)
            shared.complete("s")
        assert shared.now_s == pytest.approx(2.5)
        assert shared.n_active == 0

    def test_determinism_same_event_sequence(self, one_lte_trace):
        def run():
            shared = SharedLink(TraceLink(one_lte_trace))
            shared.start("a", 6e6)
            shared.advance_to(0.5)
            shared.start("b", 2e6)
            shared.advance_to(1.0)
            shared.start("c", 4e6)
            return drain_all(shared)

        assert run() == run()  # bitwise-equal floats, identical order


class TestHeapCompaction:
    """Stale-entry compaction: churned flows must not grow the heap."""

    def test_cancel_restart_churn_keeps_heap_bounded(self):
        # Regression: cancel + re-start leaves a stale (target, seq)
        # tuple in the heap per churn; before compaction landed, 10k
        # churns meant 10k dead entries scanned on every completion
        # query. The heap must stay O(live flows).
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        shared.start("background", 1e9)
        for _ in range(10_000):
            shared.start("churn", 1e6)
            shared.cancel("churn")
        assert shared.n_active == 1
        assert len(shared._heap) <= 2 * _MIN_COMPACT_SIZE

    def test_complete_reenqueue_churn_keeps_heap_bounded(self):
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        for _ in range(10_000):
            shared.start("s", 8e3)
            finish, _flow = shared.next_completion()
            shared.advance_to(finish)
            shared.complete("s")
        assert len(shared._heap) <= 2 * _MIN_COMPACT_SIZE

    def test_churn_does_not_perturb_survivor(self):
        # The churned link's surviving flow must finish at the exact
        # time an un-churned control link produces.
        control = SharedLink(TraceLink(constant_trace(8.0)))
        control.start("keeper", 16e6)
        churned = SharedLink(TraceLink(constant_trace(8.0)))
        churned.start("keeper", 16e6)
        for _ in range(1_000):
            churned.start("churn", 1e6)
            churned.cancel("churn")
        assert churned.next_completion() == control.next_completion()
        assert drain_all(churned) == drain_all(control)

    def test_tiny_heaps_never_compact(self):
        shared = SharedLink(TraceLink(constant_trace(8.0)))
        for k in range(_MIN_COMPACT_SIZE // 2):
            shared.start(f"f{k}", 1e6)
            shared.cancel(f"f{k}")
        # Below the floor the stale entries are tolerated (rebuild
        # bookkeeping would dominate) but bounded by the churn count.
        assert len(shared._heap) <= _MIN_COMPACT_SIZE
