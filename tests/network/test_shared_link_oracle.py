"""Property test: cached ``next_completion()`` vs. a naive oracle.

:meth:`SharedLink.next_completion` memoizes its answer under an
exact-state key and the surrounding machinery (carried ``_cum_now``,
crossing-interval hint, stale-heap compaction) all exist to make the
steady-state query cheap *without moving a single bit*. The oracle here
is a **shadow link** that replays the identical operation schedule but
is only ever queried cold — a fresh link has no cache, no warmed hint,
and no compacted heap, so its answer is the naive recompute-every-call
result. Whatever join/leave/advance/cancel schedule hypothesis draws
(including zero-rate trace runs and float-snap completions), the two
answers must be identical doubles.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.link import TraceLink
from repro.network.shared import SharedLink
from repro.network.traces import NetworkTrace

# Per-interval rates in bps; zeros exercise the zero-rate runs of the
# inverse-cumulative search (completions land past dead air).
_rates = st.lists(
    st.sampled_from([0.0, 0.0, 1e5, 1e6, 8e6, 5e7]),
    min_size=3,
    max_size=12,
)

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("start"),
            st.integers(min_value=0, max_value=5),
            # Sizes spanning 7 orders of magnitude: tiny flows complete
            # within an advance window and exercise the float-snap
            # (remaining <= 0) branch on the next query.
            st.floats(min_value=1.0, max_value=1e7),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=5)),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.0, max_value=30.0),
        ),
        st.just(("complete_next",)),
    ),
    min_size=1,
    max_size=40,
)


def _fresh_query(blueprint, replay):
    """Cold-recompute oracle: rebuild the link, replay the schedule with
    no intermediate queries, query exactly once."""
    shadow = SharedLink(TraceLink(blueprint))
    for op in replay:
        getattr(shadow, op[0])(*op[1:])
    return shadow.next_completion()


@settings(max_examples=150, deadline=None)
@given(rates=_rates, ops=_ops)
def test_cached_completion_matches_cold_recompute(rates, ops):
    # TraceLink rejects traces that deliver zero bits per period; pin a
    # positive closing interval so zero-rate *runs* remain reachable.
    trace = NetworkTrace("oracle", 1.0, np.asarray(rates + [4e6]))
    link = SharedLink(TraceLink(trace))
    replay = []  # the exact (method, *args) schedule applied so far

    def apply(method, *args):
        getattr(link, method)(*args)
        replay.append((method, *args))

    for op in ops:
        kind = op[0]
        if kind == "start":
            flow = f"f{op[1]}"
            if flow not in link._flows:
                apply("start", flow, op[2])
        elif kind == "cancel":
            flow = f"f{op[1]}"
            if flow in link._flows:
                apply("cancel", flow)
        elif kind == "advance":
            target = link.now_s + op[1]
            nxt = link.next_completion()
            if nxt is not None and nxt[0] <= target:
                # Never skip past a completion: advance exactly to it
                # and retire the flow (the scheduler's contract).
                apply("advance_to", nxt[0])
                apply("complete", nxt[1])
            else:
                apply("advance_to", target)
        else:  # complete_next
            nxt = link.next_completion()
            if nxt is not None:
                apply("advance_to", nxt[0])
                apply("complete", nxt[1])
        # Query twice: the first may compute, the second must come from
        # the exact-state cache. Both must equal the cold oracle — same
        # flow id, same finish double, bit for bit.
        first = link.next_completion()
        second = link.next_completion()
        assert second == first
        assert first == _fresh_query(trace, replay)
