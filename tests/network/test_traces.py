"""Tests for repro.network.traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.traces import (
    MIN_TRACE_DURATION_S,
    NetworkTrace,
    load_trace_file,
    save_trace_file,
    synthesize_fcc_traces,
    synthesize_lte_traces,
)


class TestNetworkTrace:
    def test_basic_properties(self):
        trace = NetworkTrace("t", 1.0, np.array([1e6, 2e6, 3e6]))
        assert trace.num_intervals == 3
        assert trace.duration_s == 3.0
        assert trace.mean_bps == pytest.approx(2e6)

    def test_throughput_at_wraps(self):
        trace = NetworkTrace("t", 1.0, np.array([1e6, 2e6]))
        assert trace.throughput_at(0.5) == 1e6
        assert trace.throughput_at(1.5) == 2e6
        assert trace.throughput_at(2.5) == 1e6  # wrapped

    def test_negative_time_rejected(self):
        trace = NetworkTrace("t", 1.0, np.array([1e6]))
        with pytest.raises(ValueError):
            trace.throughput_at(-1.0)

    def test_scaled(self):
        trace = NetworkTrace("t", 1.0, np.array([1e6, 2e6]))
        doubled = trace.scaled(2.0)
        assert doubled.mean_bps == pytest.approx(3e6)
        assert trace.mean_bps == pytest.approx(1.5e6)  # original untouched

    def test_rejects_negative_throughput(self):
        with pytest.raises(ValueError, match="non-negative"):
            NetworkTrace("t", 1.0, np.array([-1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            NetworkTrace("t", 1.0, np.array([]))


class TestLteSynthesis:
    def test_count_and_names(self):
        traces = synthesize_lte_traces(count=5, seed=0)
        assert len(traces) == 5
        assert len({t.name for t in traces}) == 5

    def test_per_second_sampling(self):
        trace = synthesize_lte_traces(count=1, seed=0)[0]
        assert trace.interval_s == 1.0

    def test_at_least_18_minutes(self):
        trace = synthesize_lte_traces(count=1, seed=0)[0]
        assert trace.duration_s >= MIN_TRACE_DURATION_S

    def test_deterministic(self):
        a = synthesize_lte_traces(count=2, seed=7)
        b = synthesize_lte_traces(count=2, seed=7)
        assert np.array_equal(a[1].throughputs_bps, b[1].throughputs_bps)

    def test_traces_differ(self):
        traces = synthesize_lte_traces(count=2, seed=0)
        assert not np.array_equal(traces[0].throughputs_bps, traces[1].throughputs_bps)

    def test_volatility(self):
        """LTE drive traces are highly variable (motivates RobustMPC etc.)."""
        traces = synthesize_lte_traces(count=20, seed=0)
        covs = [t.cov for t in traces]
        assert np.median(covs) > 0.4

    def test_mean_band_covers_contested_region(self):
        """The set's means should straddle the middle of the ladder
        (~0.5–5 Mbps) so rate decisions are non-trivial."""
        traces = synthesize_lte_traces(count=50, seed=0)
        means = np.array([t.mean_bps for t in traces]) / 1e6
        assert 0.8 < np.median(means) < 4.0
        assert means.min() > 0.1

    def test_never_zero(self):
        trace = synthesize_lte_traces(count=1, seed=0)[0]
        assert trace.throughputs_bps.min() > 0

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            synthesize_lte_traces(count=0)


class TestFccSynthesis:
    def test_per_five_second_sampling(self):
        trace = synthesize_fcc_traces(count=1, seed=0)[0]
        assert trace.interval_s == 5.0

    def test_smoother_than_lte(self):
        """§6.3: FCC traces have smoother bandwidth profiles."""
        lte = synthesize_lte_traces(count=20, seed=0)
        fcc = synthesize_fcc_traces(count=20, seed=0)
        assert np.median([t.cov for t in fcc]) < np.median([t.cov for t in lte])

    def test_higher_mean_than_lte(self):
        lte = synthesize_lte_traces(count=30, seed=0)
        fcc = synthesize_fcc_traces(count=30, seed=0)
        assert np.median([t.mean_bps for t in fcc]) > np.median([t.mean_bps for t in lte])

    def test_deterministic(self):
        a = synthesize_fcc_traces(count=1, seed=3)[0]
        b = synthesize_fcc_traces(count=1, seed=3)[0]
        assert np.array_equal(a.throughputs_bps, b.throughputs_bps)


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = synthesize_lte_traces(count=1, seed=0)[0]
        path = tmp_path / "trace.txt"
        save_trace_file(trace, path)
        loaded = load_trace_file(path, interval_s=1.0)
        assert np.allclose(loaded.throughputs_bps, trace.throughputs_bps, rtol=1e-5)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# header\n1.5\n\n2.5  # inline\n")
        trace = load_trace_file(path, interval_s=5.0)
        assert trace.num_intervals == 2
        assert trace.throughputs_bps[0] == pytest.approx(1.5e6)

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1.5\nnot-a-number\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trace_file(path, interval_s=1.0)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no throughput"):
            load_trace_file(path, interval_s=1.0)


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=15, deadline=None)
def test_property_lte_traces_well_formed(seed):
    trace = synthesize_lte_traces(count=1, seed=seed, duration_s=120.0)[0]
    assert np.all(np.isfinite(trace.throughputs_bps))
    assert trace.throughputs_bps.min() > 0
    assert trace.duration_s >= 120.0
