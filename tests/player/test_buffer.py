"""Tests for repro.player.buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.player.buffer import PlaybackBuffer


class TestFillDrain:
    def test_fill(self):
        buffer = PlaybackBuffer()
        buffer.fill(2.0)
        buffer.fill(2.0)
        assert buffer.level_s == pytest.approx(4.0)

    def test_drain_without_stall(self):
        buffer = PlaybackBuffer(level_s=5.0)
        stall = buffer.drain(3.0)
        assert stall == 0.0
        assert buffer.level_s == pytest.approx(2.0)

    def test_drain_with_stall(self):
        buffer = PlaybackBuffer(level_s=1.0)
        stall = buffer.drain(3.0)
        assert stall == pytest.approx(2.0)
        assert buffer.level_s == 0.0
        assert buffer.total_stall_s == pytest.approx(2.0)

    def test_stall_accumulates(self):
        buffer = PlaybackBuffer()
        buffer.drain(1.0)
        buffer.drain(0.5)
        assert buffer.total_stall_s == pytest.approx(1.5)

    def test_zero_drain_noop(self):
        buffer = PlaybackBuffer(level_s=2.0)
        assert buffer.drain(0.0) == 0.0
        assert buffer.level_s == 2.0

    def test_rejects_negative_drain(self):
        with pytest.raises(ValueError):
            PlaybackBuffer().drain(-1.0)

    def test_rejects_non_positive_fill(self):
        with pytest.raises(ValueError):
            PlaybackBuffer().fill(0.0)


class TestQueries:
    def test_time_until_level(self):
        buffer = PlaybackBuffer(level_s=10.0)
        assert buffer.time_until_level(4.0) == pytest.approx(6.0)
        assert buffer.time_until_level(15.0) == 0.0

    def test_is_empty(self):
        assert PlaybackBuffer().is_empty
        assert not PlaybackBuffer(level_s=0.1).is_empty


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["fill", "drain"]), st.floats(min_value=0.01, max_value=10.0)),
        max_size=60,
    )
)
@settings(max_examples=60)
def test_property_conservation(ops):
    """Invariant: filled == played + level, and stall == drain_requested -
    played. The buffer never goes negative."""
    buffer = PlaybackBuffer()
    filled = 0.0
    drained_requested = 0.0
    for op, amount in ops:
        if op == "fill":
            buffer.fill(amount)
            filled += amount
        else:
            buffer.drain(amount)
            drained_requested += amount
        assert buffer.level_s >= 0.0
    played = drained_requested - buffer.total_stall_s
    assert filled == pytest.approx(played + buffer.level_s, abs=1e-6)
    assert buffer.total_stall_s <= drained_requested + 1e-9
