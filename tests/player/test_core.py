"""Event-driven session cores vs the free-running loops.

The fleet simulator's whole correctness story rests on one claim: a
:class:`VodSessionCore` / :class:`LiveSessionCore` driven by an external
event loop replays the free-running ``StreamingSession.run`` /
``LiveStreamingSession.run`` arithmetic branch for branch. These tests
pin that claim bitwise — a single session on an uncontended
:class:`SharedLink` must be indistinguishable from a private
:class:`TraceLink` session.
"""

import numpy as np
import pytest

from repro.abr.registry import make_scheme
from repro.core.cava import cava_live
from repro.network.link import TraceLink
from repro.network.shared import SharedLink
from repro.player.core import DONE, FETCH, WAIT, LiveSessionCore, VodSessionCore
from repro.player.live import LiveSessionConfig, LiveStreamingSession
from repro.player.session import SessionConfig, StreamingSession

# Schemes spanning the event shapes the stepper must reproduce: plain
# decisions (RBA, BBA-1), controller state + startup handling (CAVA),
# horizon planning (MPC), and algorithm-requested idles (BOLA-E).
SCHEMES = ["CAVA", "RBA", "BBA-1", "MPC", "BOLA-E (peak)"]


def drive_vod(core, link):
    """Minimal scheduler: one session against a private TraceLink."""
    now = 0.0
    action = core.begin(now)
    while action[0] != DONE:
        if action[0] == WAIT:
            now += action[1]
            action = core.on_wait_done(now)
        else:
            assert action[0] == FETCH
            result = link.download(action[1], now)
            now = result.finish_s
            action = core.on_fetch_done(now, result.start_s)
    return core


def drive_vod_shared(core, shared):
    """Same session, but through the shared-bottleneck discipline."""
    action = core.begin(shared.now_s)
    while action[0] != DONE:
        if action[0] == WAIT:
            shared.advance_to(shared.now_s + action[1])
            action = core.on_wait_done(shared.now_s)
        else:
            shared.start("flow", action[1])
            finish, flow_id = shared.next_completion()
            assert flow_id == "flow"
            shared.advance_to(finish)
            shared.complete(flow_id)
            action = core.on_fetch_done(finish)
    return core


def assert_results_equal(actual, expected):
    for field in (
        "levels",
        "sizes_bits",
        "download_start_s",
        "download_finish_s",
        "stall_s",
        "buffer_after_s",
        "idle_s",
        "requested_idle_s",
        "cap_idle_s",
    ):
        assert np.array_equal(getattr(actual, field), getattr(expected, field)), field
    assert actual.startup_delay_s == expected.startup_delay_s


class TestVodEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_core_matches_free_running_loop(self, scheme, short_video, one_lte_trace):
        manifest = short_video.manifest()
        expected = StreamingSession().run(
            make_scheme(scheme), manifest, TraceLink(one_lte_trace)
        )
        core = VodSessionCore(make_scheme(scheme), manifest, record_arrays=True)
        drive_vod(core, TraceLink(one_lte_trace))
        assert core.finished
        assert_results_equal(core.result(), expected)

    @pytest.mark.parametrize("scheme", ["CAVA", "BOLA-E (peak)"])
    def test_core_on_uncontended_shared_link(self, scheme, short_video, one_lte_trace):
        """A lone flow on a SharedLink is bit-identical to a private link."""
        manifest = short_video.manifest()
        expected = StreamingSession().run(
            make_scheme(scheme), manifest, TraceLink(one_lte_trace)
        )
        core = VodSessionCore(make_scheme(scheme), manifest, record_arrays=True)
        drive_vod_shared(core, SharedLink(TraceLink(one_lte_trace)))
        assert_results_equal(core.result(), expected)

    def test_custom_config_respected(self, short_video, one_lte_trace):
        manifest = short_video.manifest()
        config = SessionConfig(startup_latency_s=4.0, max_buffer_s=20.0)
        expected = StreamingSession(config).run(
            make_scheme("CAVA"), manifest, TraceLink(one_lte_trace)
        )
        core = VodSessionCore(
            make_scheme("CAVA"), manifest, config=config, record_arrays=True
        )
        drive_vod(core, TraceLink(one_lte_trace))
        assert_results_equal(core.result(), expected)

    def test_watch_limit_truncates(self, short_video, one_lte_trace):
        manifest = short_video.manifest()
        core = VodSessionCore(
            make_scheme("RBA"), manifest, watch_chunks=7, record_arrays=True
        )
        drive_vod(core, TraceLink(one_lte_trace))
        assert core.chunk == 7
        assert core.result().num_chunks == 7
        # The truncated prefix matches the full session's first 7 chunks.
        full = StreamingSession().run(
            make_scheme("RBA"), manifest, TraceLink(one_lte_trace)
        )
        assert np.array_equal(core.result().levels, full.levels[:7])

    def test_nonzero_origin_shifts_absolute_times_only(self, short_video):
        """A session anchored at t=1000 behaves like one at t=0 on a
        time-invariant (constant) link: all ABR-visible clocks are
        session-relative."""
        from repro.network.traces import NetworkTrace

        trace = NetworkTrace("const", 1.0, np.full(4000, 3e6))
        manifest = short_video.manifest()

        core0 = VodSessionCore(make_scheme("CAVA"), manifest, record_arrays=True)
        now = 0.0
        action = core0.begin(now)
        link = TraceLink(trace)
        while action[0] != DONE:
            if action[0] == WAIT:
                now += action[1]
                action = core0.on_wait_done(now)
            else:
                result = link.download(action[1], now)
                now = result.finish_s
                action = core0.on_fetch_done(now, result.start_s)

        core1 = VodSessionCore(make_scheme("CAVA"), manifest, record_arrays=True)
        now = 1000.0
        link = TraceLink(trace)
        action = core1.begin(now)
        while action[0] != DONE:
            if action[0] == WAIT:
                now += action[1]
                action = core1.on_wait_done(now)
            else:
                result = link.download(action[1] , now)
                now = result.finish_s
                action = core1.on_fetch_done(now, result.start_s)

        assert np.array_equal(core0.result().levels, core1.result().levels)
        assert core0.total_stall_s == pytest.approx(core1.total_stall_s)

    def test_zero_watch_chunks_finishes_immediately(self, short_video):
        core = VodSessionCore(
            make_scheme("RBA"), short_video.manifest(), watch_chunks=0
        )
        assert core.begin(5.0) == (DONE,)
        assert core.finished
        assert core.chunk == 0


class TestLiveEquivalence:
    @pytest.mark.parametrize(
        "algorithm_factory",
        [
            lambda video: cava_live(10, video.chunk_duration_s, 24.0),
            lambda video: make_scheme("RBA"),
        ],
    )
    def test_core_matches_free_running_loop(
        self, algorithm_factory, short_video, one_lte_trace
    ):
        manifest = short_video.manifest()
        config = LiveSessionConfig(latency_budget_s=24.0)
        expected = LiveStreamingSession(config).run(
            algorithm_factory(short_video), manifest, TraceLink(one_lte_trace)
        )
        core = LiveSessionCore(algorithm_factory(short_video), manifest, config=config)
        link = TraceLink(one_lte_trace)
        now = 0.0
        action = core.begin(now)
        while action[0] != DONE:
            if action[0] == WAIT:
                now += action[1]
                action = core.on_wait_done(now)
            else:
                result = link.download(action[1], now)
                now = result.finish_s
                action = core.on_fetch_done(now, result.start_s)
        assert core.chunk == expected.num_chunks
        assert core.total_stall_s == expected.total_stall_s
        assert core.startup_delay_s == expected.startup_delay_s
        assert core.sum_latency_s == pytest.approx(float(expected.latency_s.sum()))
        assert core.peak_latency_s == expected.peak_latency_s
        assert core.total_bits == expected.data_usage_bits

    def test_live_watch_limit(self, short_video, one_lte_trace):
        manifest = short_video.manifest()
        core = LiveSessionCore(make_scheme("RBA"), manifest, watch_chunks=5)
        link = TraceLink(one_lte_trace)
        now = 0.0
        action = core.begin(now)
        while action[0] != DONE:
            if action[0] == WAIT:
                now += action[1]
                action = core.on_wait_done(now)
            else:
                result = link.download(action[1], now)
                now = result.finish_s
                action = core.on_fetch_done(now, result.start_s)
        assert core.chunk == 5


class TestQualityAccounting:
    def test_quality_sums_match_table(self, short_video, one_lte_trace):
        manifest = short_video.manifest()
        rows = np.stack([t.qualities["vmaf_phone"] for t in short_video.tracks])
        core = VodSessionCore(
            make_scheme("RBA"), manifest, quality_rows=rows, record_arrays=True
        )
        drive_vod(core, TraceLink(one_lte_trace))
        levels = core.result().levels
        chosen = rows[levels, np.arange(levels.size)]
        assert core.sum_quality == pytest.approx(chosen.sum())
        assert core.low_quality_chunks == int((chosen < 40.0).sum())
        assert core.sum_abs_quality_delta == pytest.approx(
            np.abs(np.diff(chosen)).sum()
        )
        assert core.mean_quality == pytest.approx(chosen.mean())
