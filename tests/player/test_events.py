"""Tests for the session event log."""

import numpy as np
import pytest

from repro.abr.base import ABRAlgorithm, DecisionContext
from repro.core.cava import cava_p123
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.events import format_events, session_events
from repro.player.session import run_session


class ZigZagAlgorithm(ABRAlgorithm):
    """Alternates levels to generate switch events."""

    name = "zigzag"

    def select_level(self, ctx: DecisionContext) -> int:
        return ctx.chunk_index % 2


def constant_trace(mbps, duration_s=2000.0):
    return NetworkTrace(f"const-{mbps}", 1.0, np.full(int(duration_s), mbps * 1e6))


class TestSessionEvents:
    def test_one_download_event_per_chunk(self, short_video):
        result = run_session(cava_p123(), short_video, TraceLink(constant_trace(5.0)))
        events = session_events(result)
        downloads = [e for e in events if e.kind == "download"]
        assert len(downloads) == short_video.num_chunks

    def test_switch_events_match_level_changes(self, short_video):
        result = run_session(ZigZagAlgorithm(), short_video, TraceLink(constant_trace(5.0)))
        events = session_events(result)
        switches = [e for e in events if e.kind.startswith("switch")]
        assert len(switches) == short_video.num_chunks - 1
        assert any(e.kind == "switch_up" for e in switches)
        assert any(e.kind == "switch_down" for e in switches)

    def test_stall_events_present_when_stalling(self, short_video):
        class TopAlgorithm(ABRAlgorithm):
            name = "top"

            def select_level(self, ctx):
                return 5

        result = run_session(TopAlgorithm(), short_video, TraceLink(constant_trace(0.4)))
        assert result.total_stall_s > 0
        events = session_events(result)
        stalls = [e for e in events if e.kind == "stall"]
        assert stalls
        total = sum(float(e.detail.split("rebuffered ")[1].split("s")[0]) for e in stalls)
        assert total == pytest.approx(result.total_stall_s, abs=0.1)

    def test_startup_event_once(self, short_video):
        result = run_session(cava_p123(), short_video, TraceLink(constant_trace(5.0)))
        events = session_events(result)
        assert sum(1 for e in events if e.kind == "startup") == 1

    def test_timeline_sorted(self, short_video, one_lte_trace):
        result = run_session(cava_p123(), short_video, TraceLink(one_lte_trace))
        events = session_events(result)
        times = [e.time_s for e in events]
        assert times == sorted(times)


class TestFormatEvents:
    def test_selected_kinds_only(self, short_video):
        result = run_session(ZigZagAlgorithm(), short_video, TraceLink(constant_trace(5.0)))
        text = format_events(session_events(result))
        assert "switch" in text
        assert "chunk 0 @" not in text  # downloads filtered by default

    def test_limit_respected(self, short_video):
        result = run_session(ZigZagAlgorithm(), short_video, TraceLink(constant_trace(5.0)))
        text = format_events(session_events(result), kinds=None, limit=5)
        assert "more events" in text
        assert len(text.splitlines()) == 6
