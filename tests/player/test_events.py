"""Tests for the session event log."""

import numpy as np
import pytest

from repro.abr.base import ABRAlgorithm, DecisionContext
from repro.core.cava import cava_p123
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.events import format_events, session_events
from repro.player.session import run_session


class ZigZagAlgorithm(ABRAlgorithm):
    """Alternates levels to generate switch events."""

    name = "zigzag"

    def select_level(self, ctx: DecisionContext) -> int:
        return ctx.chunk_index % 2


def constant_trace(mbps, duration_s=2000.0):
    return NetworkTrace(f"const-{mbps}", 1.0, np.full(int(duration_s), mbps * 1e6))


class TestSessionEvents:
    def test_one_download_event_per_chunk(self, short_video):
        result = run_session(cava_p123(), short_video, TraceLink(constant_trace(5.0)))
        events = session_events(result)
        downloads = [e for e in events if e.kind == "download"]
        assert len(downloads) == short_video.num_chunks

    def test_switch_events_match_level_changes(self, short_video):
        result = run_session(ZigZagAlgorithm(), short_video, TraceLink(constant_trace(5.0)))
        events = session_events(result)
        switches = [e for e in events if e.kind.startswith("switch")]
        assert len(switches) == short_video.num_chunks - 1
        assert any(e.kind == "switch_up" for e in switches)
        assert any(e.kind == "switch_down" for e in switches)

    def test_stall_events_present_when_stalling(self, short_video):
        class TopAlgorithm(ABRAlgorithm):
            name = "top"

            def select_level(self, ctx):
                return 5

        result = run_session(TopAlgorithm(), short_video, TraceLink(constant_trace(0.4)))
        assert result.total_stall_s > 0
        events = session_events(result)
        stalls = [e for e in events if e.kind == "stall"]
        assert stalls
        total = sum(float(e.detail.split("rebuffered ")[1].split("s")[0]) for e in stalls)
        assert total == pytest.approx(result.total_stall_s, abs=0.1)

    def test_startup_event_once(self, short_video):
        result = run_session(cava_p123(), short_video, TraceLink(constant_trace(5.0)))
        events = session_events(result)
        assert sum(1 for e in events if e.kind == "startup") == 1

    def test_timeline_sorted(self, short_video, one_lte_trace):
        result = run_session(cava_p123(), short_video, TraceLink(one_lte_trace))
        events = session_events(result)
        times = [e.time_s for e in events]
        assert times == sorted(times)


def result_with_idles(requested, cap, split=True):
    """Two-chunk result with controlled idle attribution on chunk 1."""
    from repro.player.session import SessionResult

    return SessionResult(
        scheme="s",
        video_name="v",
        trace_name="t",
        levels=np.array([0, 0]),
        sizes_bits=np.array([1e6, 1e6]),
        download_start_s=np.array([0.0, 10.0]),
        download_finish_s=np.array([1.0, 11.0]),
        stall_s=np.zeros(2),
        buffer_after_s=np.array([2.0, 4.0]),
        idle_s=np.array([0.0, requested + cap]),
        startup_delay_s=1.0,
        requested_idle_s=np.array([0.0, requested]) if split else None,
        cap_idle_s=np.array([0.0, cap]) if split else None,
    )


class TestIdleAttribution:
    def test_split_kinds_emitted(self):
        events = session_events(result_with_idles(1.5, 0.5))
        requested = [e for e in events if e.kind == "idle_requested"]
        cap = [e for e in events if e.kind == "idle_cap"]
        assert len(requested) == len(cap) == 1
        # requested idle precedes the cap idle before the download starts
        assert requested[0].time_s == pytest.approx(10.0 - 0.5 - 1.5)
        assert cap[0].time_s == pytest.approx(10.0 - 0.5)
        assert "1.50s" in requested[0].detail
        assert "buffer-cap" in cap[0].detail
        assert not [e for e in events if e.kind == "idle"]

    def test_only_nonzero_components_emitted(self):
        events = session_events(result_with_idles(1.5, 0.0))
        assert [e.kind for e in events if e.kind.startswith("idle")] == [
            "idle_requested"
        ]
        events = session_events(result_with_idles(0.0, 0.5))
        assert [e.kind for e in events if e.kind.startswith("idle")] == ["idle_cap"]

    def test_legacy_records_fall_back_to_merged_idle(self):
        events = session_events(result_with_idles(1.5, 0.5, split=False))
        idles = [e for e in events if e.kind.startswith("idle")]
        assert [e.kind for e in idles] == ["idle"]
        assert idles[0].time_s == pytest.approx(10.0 - 2.0)

    def test_cap_idle_from_real_session(self, short_video):
        # A tiny buffer cap forces cap-idle waits on a fast link.
        from repro.player.session import SessionConfig

        config = SessionConfig(startup_latency_s=4.0, max_buffer_s=8.0)
        result = run_session(
            cava_p123(), short_video, TraceLink(constant_trace(50.0)), config=config
        )
        assert float(np.sum(result.cap_idle_s)) > 0
        events = session_events(result)
        assert any(e.kind == "idle_cap" for e in events)


class TestFormatEvents:
    def test_selected_kinds_only(self, short_video):
        result = run_session(ZigZagAlgorithm(), short_video, TraceLink(constant_trace(5.0)))
        text = format_events(session_events(result))
        assert "switch" in text
        assert "chunk 0 @" not in text  # downloads filtered by default

    def test_limit_respected(self, short_video):
        result = run_session(ZigZagAlgorithm(), short_video, TraceLink(constant_trace(5.0)))
        text = format_events(session_events(result), kinds=None, limit=5)
        assert "more events" in text
        assert len(text.splitlines()) == 6

    @pytest.mark.parametrize(
        "kinds",
        [
            ["startup"],
            {"startup"},
            iter(("startup",)),
            (k for k in ["startup"]),
        ],
        ids=["list", "set", "iterator", "generator"],
    )
    def test_kinds_accepts_any_iterable(self, short_video, kinds):
        result = run_session(ZigZagAlgorithm(), short_video, TraceLink(constant_trace(5.0)))
        text = format_events(session_events(result), kinds=kinds)
        assert len(text.splitlines()) == 1
        assert "playback started" in text
