"""Tests for live streaming (§8 future work, implemented)."""

import numpy as np
import pytest

from repro.abr.base import ABRAlgorithm, DecisionContext
from repro.core.cava import cava_live, cava_p123
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.live import (
    LiveSessionConfig,
    LiveSessionResult,
    LiveStreamingSession,
    run_live_session,
)


class FixedLevelAlgorithm(ABRAlgorithm):
    def __init__(self, level):
        self.level = level
        self.name = f"fixed-{level}"

    def select_level(self, ctx: DecisionContext) -> int:
        return self.level


def constant_trace(mbps, duration_s=2000.0):
    return NetworkTrace(f"const-{mbps}", 1.0, np.full(int(duration_s), mbps * 1e6))


class TestAvailability:
    def test_player_waits_at_live_edge(self, short_video):
        """On a very fast link the player is gated by chunk production:
        the session takes about as long as the broadcast itself."""
        result = run_live_session(
            FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(100.0))
        )
        assert result.availability_wait_s.sum() > 0.5 * short_video.duration_s
        assert result.download_finish_s[-1] >= (short_video.num_chunks - 1) * 2.0

    def test_chunk_never_downloaded_before_produced(self, short_video):
        result = run_live_session(
            FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(100.0))
        )
        delta = short_video.chunk_duration_s
        for i in range(result.num_chunks):
            assert result.download_start_s[i] >= i * delta - 1e-9


class TestLatency:
    def test_latency_nonnegative_and_bounded(self, short_video):
        config = LiveSessionConfig(latency_budget_s=20.0)
        result = run_live_session(
            cava_live(10, short_video.chunk_duration_s, 20.0),
            short_video,
            TraceLink(constant_trace(10.0)),
            config,
        )
        assert np.all(result.latency_s >= 0)
        # Latency stays within budget + a couple of chunks of slack.
        assert result.peak_latency_s <= 20.0 + 3 * short_video.chunk_duration_s

    def test_slow_link_grows_latency(self, short_video):
        """A link slower than the broadcast bitrate forces stalls, which
        push playback further behind the live edge."""
        fast = run_live_session(
            FixedLevelAlgorithm(2), short_video, TraceLink(constant_trace(10.0))
        )
        slow = run_live_session(
            FixedLevelAlgorithm(2), short_video, TraceLink(constant_trace(0.35))
        )
        assert slow.mean_latency_s > fast.mean_latency_s
        assert slow.total_stall_s > 0

    def test_buffer_bounded_by_latency_budget(self, short_video):
        config = LiveSessionConfig(latency_budget_s=12.0)
        result = run_live_session(
            FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(50.0)), config
        )
        assert result.buffer_after_s.max() <= 12.0 + 1e-6


class TestCavaLive:
    def test_windows_clamped_to_lookahead(self, short_video):
        algorithm = cava_live(lookahead_chunks=5, chunk_duration_s=2.0)
        assert algorithm.config.inner_window_s <= 10.0
        assert algorithm.config.outer_window_s <= 10.0
        assert algorithm.config.horizon_chunks <= 5

    def test_target_bounded_by_latency_budget(self):
        algorithm = cava_live(10, 2.0, latency_budget_s=20.0)
        assert algorithm.config.base_target_buffer_s <= 12.0

    def test_live_session_runs_clean(self, short_video, one_lte_trace):
        algorithm = cava_live(10, short_video.chunk_duration_s, 24.0)
        result = run_live_session(
            algorithm, short_video, TraceLink(one_lte_trace),
            LiveSessionConfig(latency_budget_s=24.0),
        )
        assert result.num_chunks == short_video.num_chunks
        assert result.scheme == "CAVA-live"

    def test_live_cava_lower_latency_than_vod_cava(self, short_video, one_lte_trace):
        """The point of the adaptation: VoD CAVA's 60 s target drags a
        minute behind the live edge; live CAVA stays close."""
        config = LiveSessionConfig(latency_budget_s=60.0)
        vod = run_live_session(
            cava_p123(), short_video, TraceLink(one_lte_trace), config
        )
        live = run_live_session(
            cava_live(10, short_video.chunk_duration_s, 24.0),
            short_video,
            TraceLink(one_lte_trace),
            config,
        )
        # Same session rules; the live-tuned controller holds less backlog.
        assert live.buffer_after_s.mean() <= vod.buffer_after_s.mean() + 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            cava_live(0, 2.0)
        with pytest.raises(ValueError):
            cava_live(5, -1.0)
        with pytest.raises(ValueError):
            cava_live(5, 2.0, latency_budget_s=0.0)


class TestConfigValidation:
    def test_bad_startup_chunks(self):
        with pytest.raises(ValueError):
            LiveSessionConfig(startup_chunks=0)

    def test_bad_lookahead(self):
        with pytest.raises(ValueError):
            LiveSessionConfig(lookahead_chunks=-1)


class TestConfigAliasing:
    """Regression: ``config=LiveSessionConfig()`` as a literal default is
    evaluated once at definition time, so every default-constructed
    session shared (aliased) one config instance."""

    def test_default_sessions_do_not_share_a_config(self):
        first = LiveStreamingSession()
        second = LiveStreamingSession()
        assert first.config is not second.config

    def test_sessions_with_distinct_configs_do_not_alias(self):
        default = LiveStreamingSession()
        custom = LiveStreamingSession(LiveSessionConfig(startup_chunks=3))
        assert custom.config is not default.config
        assert default.config.startup_chunks == 2
        assert custom.config.startup_chunks == 3

    def test_vod_sessions_do_not_share_a_config(self):
        from repro.player.session import StreamingSession

        assert StreamingSession().config is not StreamingSession().config


def _empty_live_result():
    empty_f = np.zeros(0, dtype=float)
    return LiveSessionResult(
        scheme="fixed-0",
        video_name="none",
        trace_name="none",
        levels=np.zeros(0, dtype=int),
        sizes_bits=empty_f,
        download_start_s=empty_f,
        download_finish_s=empty_f,
        stall_s=empty_f,
        buffer_after_s=empty_f,
        availability_wait_s=empty_f,
        latency_s=empty_f,
        startup_delay_s=0.0,
    )


class TestEmptySession:
    """Regression: mean/peak latency on a zero-chunk session raised
    ``ValueError`` (np.max) or returned NaN with a RuntimeWarning."""

    def test_zero_chunk_latency_metrics_are_defined(self):
        result = _empty_live_result()
        assert result.num_chunks == 0
        with np.errstate(all="raise"):
            assert result.mean_latency_s == 0.0
            assert result.peak_latency_s == 0.0

    def test_zero_chunk_metrics_emit_no_warnings(self):
        import warnings

        result = _empty_live_result()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.mean_latency_s == 0.0
            assert result.peak_latency_s == 0.0
            assert result.total_stall_s == 0.0
            assert result.data_usage_bits == 0.0
