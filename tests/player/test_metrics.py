"""Tests for repro.player.metrics: the five §6.1 QoE metrics."""

import numpy as np
import pytest

from repro.abr.base import ABRAlgorithm, DecisionContext
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.metrics import (
    LOW_QUALITY_VMAF,
    metric_for_network,
    quality_series,
    summarize_session,
)
from repro.player.session import run_session
from repro.video.classify import ChunkClassifier


class FixedLevelAlgorithm(ABRAlgorithm):
    def __init__(self, level):
        self.level = level
        self.name = f"fixed-{level}"

    def select_level(self, ctx: DecisionContext) -> int:
        return self.level


def fast_link():
    return TraceLink(NetworkTrace("fast", 1.0, np.full(2000, 50e6)))


@pytest.fixture(scope="module")
def fixed_result(short_video_module):
    return run_session(FixedLevelAlgorithm(3), short_video_module, fast_link())


@pytest.fixture(scope="module")
def short_video_module(request):
    return request.getfixturevalue("short_video")


class TestMetricForNetwork:
    def test_convention(self):
        assert metric_for_network("lte") == "vmaf_phone"
        assert metric_for_network("fcc") == "vmaf_tv"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            metric_for_network("5g")


class TestQualitySeries:
    def test_matches_ground_truth_for_fixed_level(self, short_video, fixed_result):
        series = quality_series(fixed_result, short_video, "vmaf_phone")
        expected = short_video.track(3).qualities["vmaf_phone"]
        assert np.allclose(series, expected)

    def test_length_mismatch_rejected(self, short_video, ed_ffmpeg_video, fixed_result):
        with pytest.raises(ValueError, match="chunks"):
            quality_series(fixed_result, ed_ffmpeg_video, "vmaf_phone")


class TestSummarizeSession:
    def test_q4_vs_q13_definition(self, short_video, fixed_result):
        classifier = ChunkClassifier.from_video(short_video)
        metrics = summarize_session(fixed_result, short_video, "vmaf_phone", classifier)
        series = quality_series(fixed_result, short_video, "vmaf_phone")
        q4 = classifier.categories == 4
        assert metrics.q4_quality_mean == pytest.approx(float(np.mean(series[q4])))
        assert metrics.q13_quality_mean == pytest.approx(float(np.mean(series[~q4])))

    def test_low_quality_fraction(self, short_video):
        result = run_session(FixedLevelAlgorithm(0), short_video, fast_link())
        metrics = summarize_session(result, short_video, "vmaf_tv")
        series = quality_series(result, short_video, "vmaf_tv")
        assert metrics.low_quality_fraction == pytest.approx(
            float(np.mean(series < LOW_QUALITY_VMAF))
        )
        # 144p on a TV screen is low quality nearly everywhere.
        assert metrics.low_quality_fraction > 0.5

    def test_quality_change_definition(self, short_video, fixed_result):
        metrics = summarize_session(fixed_result, short_video, "vmaf_phone")
        series = quality_series(fixed_result, short_video, "vmaf_phone")
        assert metrics.quality_change_per_chunk == pytest.approx(
            float(np.mean(np.abs(np.diff(series))))
        )

    def test_data_usage_megabytes(self, short_video, fixed_result):
        metrics = summarize_session(fixed_result, short_video, "vmaf_phone")
        assert metrics.data_usage_mb == pytest.approx(
            fixed_result.data_usage_bits / 8e6
        )

    def test_fixed_level_has_zero_switches(self, short_video, fixed_result):
        metrics = summarize_session(fixed_result, short_video, "vmaf_phone")
        assert metrics.level_switches == 0
        assert metrics.mean_level == pytest.approx(3.0)

    def test_as_dict_complete(self, short_video, fixed_result):
        metrics = summarize_session(fixed_result, short_video, "vmaf_phone")
        data = metrics.as_dict()
        assert "q4_quality_mean" in data and "data_usage_mb" in data
        assert len(data) == 11


class TestCompositeQoe:
    def test_penalties_reduce_score(self, short_video, fixed_result):
        from repro.player.metrics import QoeWeights, composite_qoe

        metrics = summarize_session(fixed_result, short_video, "vmaf_phone")
        base = composite_qoe(metrics, QoeWeights(0.0, 0.0, 0.0))
        assert base == pytest.approx(metrics.mean_quality)
        full = composite_qoe(metrics)
        assert full <= base

    def test_weights_validation(self):
        from repro.player.metrics import QoeWeights

        with pytest.raises(ValueError):
            QoeWeights(rebuffer_per_s=-1.0)

    def test_ranks_cava_above_mpc_on_volatile_traces(
        self, ed_ffmpeg_video, ed_classifier, lte_traces
    ):
        from repro.abr.registry import make_scheme
        from repro.network.link import TraceLink
        from repro.player.metrics import composite_qoe
        from repro.player.session import run_session

        scores = {"CAVA": [], "MPC": []}
        for trace in lte_traces[:5]:
            for scheme in scores:
                result = run_session(
                    make_scheme(scheme), ed_ffmpeg_video, TraceLink(trace)
                )
                metrics = summarize_session(
                    result, ed_ffmpeg_video, "vmaf_phone", ed_classifier
                )
                scores[scheme].append(composite_qoe(metrics))
        assert np.mean(scores["CAVA"]) > np.mean(scores["MPC"])
