"""Property tests for the SessionResult JSON round-trip."""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cava import cava_p123
from repro.network.link import TraceLink
from repro.player.session import SessionResult, run_session

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


@st.composite
def session_results(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    float_array = st.lists(finite_floats, min_size=n, max_size=n).map(
        lambda xs: np.asarray(xs, dtype=float)
    )
    has_split = draw(st.booleans())
    return SessionResult(
        scheme=draw(st.text(min_size=1, max_size=10)),
        video_name=draw(st.text(min_size=1, max_size=10)),
        trace_name=draw(st.text(min_size=1, max_size=10)),
        levels=np.asarray(
            draw(st.lists(st.integers(0, 5), min_size=n, max_size=n)), dtype=int
        ),
        sizes_bits=draw(float_array),
        download_start_s=draw(float_array),
        download_finish_s=draw(float_array),
        stall_s=draw(float_array),
        buffer_after_s=draw(float_array),
        idle_s=draw(float_array),
        startup_delay_s=draw(finite_floats),
        requested_idle_s=draw(float_array) if has_split else None,
        cap_idle_s=draw(float_array) if has_split else None,
    )


def assert_round_trip_exact(result):
    clone = SessionResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert (clone.scheme, clone.video_name, clone.trace_name) == (
        result.scheme, result.video_name, result.trace_name,
    )
    assert clone.startup_delay_s == result.startup_delay_s
    for name, _ in SessionResult._ARRAY_FIELDS:
        original, restored = getattr(result, name), getattr(clone, name)
        if original is None:
            assert restored is None
            continue
        # bit-exact: Python's JSON float formatting is shortest round-trip
        assert np.array_equal(original, restored), name
        assert original.dtype == restored.dtype, name


class TestRoundTripProperty:
    @given(result=session_results())
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip_is_exact(self, result):
        assert_round_trip_exact(result)

    def test_real_session_round_trips(self, short_video, one_lte_trace):
        result = run_session(cava_p123(), short_video, TraceLink(one_lte_trace))
        assert_round_trip_exact(result)

    def test_legacy_dict_without_split_fields(self, short_video, one_lte_trace):
        # Archived records from before the idle-attribution split load
        # with the new fields as None.
        result = run_session(cava_p123(), short_video, TraceLink(one_lte_trace))
        data = result.to_dict()
        del data["requested_idle_s"]
        del data["cap_idle_s"]
        clone = SessionResult.from_dict(json.loads(json.dumps(data)))
        assert clone.requested_idle_s is None
        assert clone.cap_idle_s is None
        assert np.array_equal(clone.idle_s, result.idle_s)
