"""Tests for repro.player.session: the streaming-session simulator."""

import numpy as np
import pytest

from repro.abr.base import ABRAlgorithm, DecisionContext
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.session import SessionConfig, run_session


class FixedLevelAlgorithm(ABRAlgorithm):
    """Test double: always picks the same level."""

    def __init__(self, level: int):
        self.level = level
        self.name = f"fixed-{level}"
        self.contexts = []

    def select_level(self, ctx: DecisionContext) -> int:
        self.contexts.append(ctx)
        return self.level


class PausingAlgorithm(FixedLevelAlgorithm):
    """Requests a fixed idle before every chunk."""

    def __init__(self, level: int, idle_s: float):
        super().__init__(level)
        self.idle_s = idle_s

    def requested_idle_s(self, ctx: DecisionContext) -> float:
        return self.idle_s


def constant_trace(mbps: float, duration_s: float = 2000.0) -> NetworkTrace:
    n = int(duration_s)
    return NetworkTrace(f"const-{mbps}", 1.0, np.full(n, mbps * 1e6))


class TestBasicSession:
    def test_streams_every_chunk(self, short_video):
        result = run_session(FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(5.0)))
        assert result.num_chunks == short_video.num_chunks
        assert np.all(result.levels == 0)

    def test_no_stall_on_fast_link(self, short_video):
        result = run_session(FixedLevelAlgorithm(5), short_video, TraceLink(constant_trace(50.0)))
        assert result.total_stall_s == 0.0

    def test_stalls_on_slow_link(self, short_video):
        """Top track (~5 Mbps) over a 0.2 Mbps link must stall."""
        result = run_session(FixedLevelAlgorithm(5), short_video, TraceLink(constant_trace(0.2)))
        assert result.total_stall_s > 0.0

    def test_lowest_track_survives_modest_link(self, short_video):
        result = run_session(FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(0.5)))
        assert result.total_stall_s == 0.0

    def test_data_usage_matches_chosen_sizes(self, short_video):
        result = run_session(FixedLevelAlgorithm(2), short_video, TraceLink(constant_trace(10.0)))
        expected = float(np.sum(short_video.track(2).chunk_sizes_bits))
        assert result.data_usage_bits == pytest.approx(expected)

    def test_monotone_timestamps(self, short_video):
        result = run_session(FixedLevelAlgorithm(3), short_video, TraceLink(constant_trace(3.0)))
        assert np.all(np.diff(result.download_finish_s) > 0)
        assert np.all(result.download_finish_s >= result.download_start_s)


class TestStartup:
    def test_startup_delay_recorded(self, short_video):
        config = SessionConfig(startup_latency_s=10.0)
        result = run_session(
            FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(5.0)), config
        )
        # 10 s of video at level 0 must be downloaded before playback.
        assert result.startup_delay_s > 0.0

    def test_no_stall_during_startup(self, short_video):
        """Pre-playback downloads never count as rebuffering."""
        config = SessionConfig(startup_latency_s=20.0)
        result = run_session(
            FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(1.0)), config
        )
        # The first chunks are downloaded before playback starts.
        delta = short_video.chunk_duration_s
        pre_playback = int(np.ceil(20.0 / delta))
        assert np.all(result.stall_s[:pre_playback] == 0.0)

    def test_startup_cannot_exceed_max_buffer(self):
        with pytest.raises(ValueError):
            SessionConfig(startup_latency_s=200.0, max_buffer_s=100.0)


class TestBufferCap:
    def test_buffer_never_exceeds_cap(self, short_video):
        config = SessionConfig(max_buffer_s=30.0, startup_latency_s=10.0)
        result = run_session(
            FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(50.0)), config
        )
        assert result.buffer_after_s.max() <= 30.0 + 1e-9

    def test_idle_recorded_when_capped(self, short_video):
        config = SessionConfig(max_buffer_s=20.0, startup_latency_s=10.0)
        result = run_session(
            FixedLevelAlgorithm(0), short_video, TraceLink(constant_trace(50.0)), config
        )
        assert result.idle_s.sum() > 0.0


class TestRequestedIdle:
    def test_pause_consumes_buffer(self, short_video):
        fast = TraceLink(constant_trace(50.0))
        eager = run_session(FixedLevelAlgorithm(0), short_video, fast)
        lazy = run_session(PausingAlgorithm(0, idle_s=1.0), short_video, fast)
        assert lazy.session_duration_s > eager.session_duration_s

    def test_pause_never_causes_stall(self, short_video):
        """The session clips requested idles at one chunk of buffer."""
        result = run_session(
            PausingAlgorithm(0, idle_s=1e6), short_video, TraceLink(constant_trace(5.0))
        )
        assert result.total_stall_s == 0.0


class TestContextContents:
    def test_contexts_are_well_formed(self, short_video):
        algorithm = FixedLevelAlgorithm(1)
        run_session(algorithm, short_video, TraceLink(constant_trace(5.0)))
        contexts = algorithm.contexts
        assert len(contexts) == short_video.num_chunks
        assert contexts[0].chunk_index == 0
        assert contexts[0].last_level is None
        assert all(c.buffer_s >= 0 for c in contexts)
        assert all(c.bandwidth_bps > 0 for c in contexts)
        assert contexts[1].last_level == 1

    def test_invalid_level_rejected(self, short_video):
        class BadAlgorithm(ABRAlgorithm):
            name = "bad"

            def select_level(self, ctx):
                return 99

        with pytest.raises(ValueError, match="invalid level"):
            run_session(BadAlgorithm(), short_video, TraceLink(constant_trace(5.0)))


class TestDeterminism:
    def test_repeatable(self, short_video, one_lte_trace):
        a = run_session(FixedLevelAlgorithm(2), short_video, TraceLink(one_lte_trace))
        b = run_session(FixedLevelAlgorithm(2), short_video, TraceLink(one_lte_trace))
        assert np.array_equal(a.download_finish_s, b.download_finish_s)
        assert a.total_stall_s == b.total_stall_s
