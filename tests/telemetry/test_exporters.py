"""Tests for the JSONL and Prometheus exporters."""

import json

import numpy as np
import pytest

from repro.core.cava import cava_p123
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.events import SessionEvent, session_events
from repro.player.session import run_session
from repro.telemetry.exporters import (
    events_to_jsonl,
    registry_to_prometheus,
    trace_to_jsonl,
    write_jsonl,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import SessionTracer


@pytest.fixture(scope="module")
def traced_session(short_video):
    trace = NetworkTrace("const-5", 1.0, np.full(2000, 5e6))
    tracer = SessionTracer()
    result = run_session(
        cava_p123(), short_video, TraceLink(trace), tracer=tracer
    )
    return result, tracer.trace


class TestTraceJsonl:
    def test_header_then_chunks(self, traced_session):
        _, trace = traced_session
        lines = trace_to_jsonl(trace).splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "session"
        assert header["num_chunks"] == trace.num_chunks
        chunks = [json.loads(line) for line in lines[1:]]
        assert [c["kind"] for c in chunks] == ["chunk"] * trace.num_chunks
        assert chunks[0]["controller"]["target_buffer_s"] > 0

    def test_every_line_is_json(self, traced_session):
        _, trace = traced_session
        text = trace_to_jsonl(trace)
        assert text.endswith("\n")
        for line in text.splitlines():
            json.loads(line)


class TestEventsJsonl:
    def test_round_trips_events(self, traced_session):
        result, _ = traced_session
        events = session_events(result)
        lines = events_to_jsonl(events).splitlines()
        assert len(lines) == len(events)
        first = json.loads(lines[0])
        assert set(first) == {"time_s", "event", "chunk_index", "detail"}

    def test_empty_events(self):
        assert events_to_jsonl([]) == ""

    def test_write_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "events.jsonl"
        text = events_to_jsonl([SessionEvent(1.0, "stall", 3, "d")])
        assert write_jsonl(text, path) == path
        assert json.loads(path.read_text())["event"] == "stall"


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("sessions_total", "sessions run").inc(5)
        reg.gauge("workers").set(2.5)
        text = registry_to_prometheus(reg)
        assert "# HELP sessions_total sessions run" in text
        assert "# TYPE sessions_total counter" in text
        assert "\nsessions_total 5\n" in text  # integer rendered bare
        assert "workers 2.5" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("unit_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0, 3.0):
            hist.observe(value)
        text = registry_to_prometheus(reg)
        assert 'unit_seconds_bucket{le="0.1"} 1' in text
        assert 'unit_seconds_bucket{le="1"} 2' in text
        assert 'unit_seconds_bucket{le="+Inf"} 4' in text
        assert f"unit_seconds_sum {0.05 + 0.5 + 2.0 + 3.0!r}" in text
        assert "unit_seconds_count 4" in text

    def test_sorted_and_empty(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        text = registry_to_prometheus(reg)
        assert text.index("a_total") < text.index("b_total")
        assert registry_to_prometheus(MetricsRegistry()) == ""


class TestPrometheusEscaping:
    def test_help_newline_and_backslash_escaped(self):
        reg = MetricsRegistry()
        reg.counter("weird_total", "line one\nline two \\ done").inc()
        text = registry_to_prometheus(reg)
        assert "# HELP weird_total line one\\nline two \\\\ done" in text
        # The dump must stay line-parseable: every line starts with a
        # comment marker or a metric name character.
        for line in text.splitlines():
            assert line.startswith("#") or line[0].isalpha()

    def test_label_value_quote_backslash_newline_escaped(self):
        reg = MetricsRegistry()
        reg.counter(
            "sessions_total", "per-scheme sessions",
            labels={"scheme": 'cava-p123"\\evil\nname'},
        ).inc(3)
        text = registry_to_prometheus(reg)
        assert 'scheme="cava-p123\\"\\\\evil\\nname"' in text
        assert "\nname" not in text.replace("\\nname", "")  # no raw newline leaked

    def test_scheme_alias_label_round_trip(self):
        reg = MetricsRegistry()
        reg.counter(
            "sessions_total", "sessions", labels={"scheme": "cava-p123"}
        ).inc(7)
        assert 'sessions_total{scheme="cava-p123"} 7' in registry_to_prometheus(reg)

    def test_family_header_once_for_labeled_series(self):
        reg = MetricsRegistry()
        reg.counter("units_total", "units per scheme", labels={"scheme": "CAVA"}).inc()
        reg.counter("units_total", "units per scheme", labels={"scheme": "RBA"}).inc(2)
        text = registry_to_prometheus(reg)
        assert text.count("# HELP units_total") == 1
        assert text.count("# TYPE units_total counter") == 1
        assert 'units_total{scheme="CAVA"} 1' in text
        assert 'units_total{scheme="RBA"} 2' in text

    def test_histogram_type_line_and_labeled_buckets(self):
        reg = MetricsRegistry()
        reg.histogram(
            "unit_seconds", "unit wall time", buckets=(1.0,),
            labels={"scheme": "CAVA"},
        ).observe(0.5)
        text = registry_to_prometheus(reg)
        assert "# TYPE unit_seconds histogram" in text
        assert 'unit_seconds_bucket{scheme="CAVA",le="1"} 1' in text
        assert 'unit_seconds_count{scheme="CAVA"} 1' in text

    def test_timeseries_rendered_as_gauge_latest_point(self):
        reg = MetricsRegistry()
        series = reg.timeseries("rss_bytes", "resident size", labels={"pid": "42"})
        series.observe(100.0, t=1.0)
        series.observe(250.0, t=2.0)
        text = registry_to_prometheus(reg)
        assert "# TYPE rss_bytes gauge" in text
        assert 'rss_bytes{pid="42"} 250' in text
