"""Tests for the process-safe metrics registry."""

import pickle

import pytest

from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("c_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0


class TestHistogram:
    def test_le_semantics(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)   # le=1
        h.observe(1.0)   # exactly on a bound: belongs to that bucket
        h.observe(1.5)   # le=2
        h.observe(99.0)  # +Inf overflow
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(102.0)

    def test_default_buckets(self):
        h = Histogram("h")
        assert h.bounds == DEFAULT_SECONDS_BUCKETS
        assert len(h.counts) == len(DEFAULT_SECONDS_BUCKETS) + 1

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", buckets=(1.0, 1.0))

    def test_bounds_required(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())


class TestNames:
    @pytest.mark.parametrize("bad", ["", "has space", "1starts_with_digit", "a-b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            Counter(bad)

    def test_colon_namespace_allowed(self):
        assert Counter("repro:sessions_total").name == "repro:sessions_total"


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_get_unknown_is_none(self):
        assert MetricsRegistry().get("nope") is None

    def test_metrics_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.gauge("a")
        assert [m.name for m in reg.metrics()] == ["a", "z_total"]


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("sessions_total").inc(3)
    reg.gauge("workers").set(2)
    hist = reg.histogram("unit_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(5.0)
    return reg


class TestSnapshotMerge:
    def test_snapshot_is_picklable(self):
        snap = populated_registry().snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_into_fresh_registry(self):
        merged = MetricsRegistry()
        merged.merge(populated_registry().snapshot())
        assert merged.counter("sessions_total").value == 3
        assert merged.gauge("workers").value == 2
        assert merged.get("unit_seconds").counts == [1, 0, 1]

    def test_counters_and_histograms_add_gauges_overwrite(self):
        merged = MetricsRegistry()
        merged.gauge("workers").set(99)
        snap = populated_registry().snapshot()
        merged.merge(snap)
        merged.merge(snap)
        assert merged.counter("sessions_total").value == 6
        assert merged.gauge("workers").value == 2  # last write wins
        hist = merged.get("unit_seconds")
        assert hist.counts == [2, 0, 2]
        assert hist.sum == pytest.approx(2 * 5.05)

    def test_merge_all_order(self):
        a = MetricsRegistry()
        a.gauge("g").set(1)
        b = MetricsRegistry()
        b.gauge("g").set(2)
        merged = MetricsRegistry()
        merged.merge_all([a.snapshot(), b.snapshot()])
        assert merged.gauge("g").value == 2

    def test_histogram_bounds_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises((TypeError, ValueError)):
            b.merge(a.snapshot())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricsRegistry().merge({"m": {"kind": "summary", "value": 1.0}})
