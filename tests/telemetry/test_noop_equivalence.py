"""Tracing must never change what it observes.

The acceptance bar for the telemetry layer: a session run with tracing
enabled (or with a metrics registry attached to the sweep engine) is
bit-identical to one run without, serially and across the process pool.
"""

import numpy as np
import pytest

from repro.abr.registry import make_scheme
from repro.core.cava import cava_p123
from repro.experiments.parallel import (
    SESSIONS_COMPLETED_METRIC,
    ParallelSweepRunner,
)
from repro.experiments.runner import run_comparison
from repro.network.link import TraceLink
from repro.player.session import run_session
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import NullTracer, SessionTracer

SCHEMES = ["CAVA", "RBA"]


def assert_results_identical(a, b):
    assert (a.scheme, a.video_name, a.trace_name) == (b.scheme, b.video_name, b.trace_name)
    assert a.startup_delay_s == b.startup_delay_s
    for name, _ in a._ARRAY_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert np.array_equal(left, right), name


class TestSessionEquivalence:
    @pytest.mark.parametrize("scheme", ["CAVA", "RBA", "BOLA-E (peak)"])
    def test_traced_equals_untraced(self, short_video, one_lte_trace, scheme):
        plain = run_session(
            make_scheme(scheme), short_video, TraceLink(one_lte_trace)
        )
        traced = run_session(
            make_scheme(scheme),
            short_video,
            TraceLink(one_lte_trace),
            tracer=SessionTracer(),
        )
        assert_results_identical(plain, traced)

    def test_null_tracer_equals_none(self, short_video, one_lte_trace):
        plain = run_session(cava_p123(), short_video, TraceLink(one_lte_trace))
        nulled = run_session(
            cava_p123(), short_video, TraceLink(one_lte_trace), tracer=NullTracer()
        )
        assert_results_identical(plain, nulled)


class TestSweepEquivalence:
    def test_registry_does_not_change_results(self, short_video, lte_traces):
        plain = run_comparison(SCHEMES, short_video, lte_traces[:6])
        registry = MetricsRegistry()
        observed = run_comparison(
            SCHEMES, short_video, lte_traces[:6], registry=registry
        )
        assert list(plain) == list(observed)
        for scheme in plain:
            assert plain[scheme].metrics == observed[scheme].metrics
        completed = registry.counter(SESSIONS_COMPLETED_METRIC).value
        assert completed == len(SCHEMES) * 6

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_pool_and_serial_report_identical_metrics(
        self, short_video, lte_traces, n_workers
    ):
        registry = MetricsRegistry()
        engine = ParallelSweepRunner(
            n_workers=n_workers, min_parallel_sessions=0, registry=registry
        )
        results = engine.run_comparison(SCHEMES, short_video, lte_traces[:6])
        plain = run_comparison(SCHEMES, short_video, lte_traces[:6])
        for scheme in plain:
            assert plain[scheme].metrics == results[scheme].metrics
        assert registry.counter(SESSIONS_COMPLETED_METRIC).value == len(SCHEMES) * 6
