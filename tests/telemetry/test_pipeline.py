"""Tests for the observability pipeline: Chrome trace export, resource
sampling, the Prometheus HTTP endpoint, and the live progress board."""

import json
import urllib.request

import pytest

from repro.telemetry.metrics import (
    CPU_PERCENT_METRIC,
    RSS_BYTES_METRIC,
    MetricsRegistry,
)
from repro.telemetry.pipeline import (
    MetricsServer,
    ProgressBoard,
    ResourceSampler,
    chrome_trace,
    load_progress,
    render_top,
    span_totals,
    stage_breakdown,
    write_chrome_trace,
)
from repro.telemetry.spans import SpanTracer, StageTimer


def _sample_spans():
    tracer = SpanTracer("scheduler")
    with tracer.span("sweep.drain", cat="sched"):
        pass
    worker = SpanTracer("worker-7")
    with worker.span("unit.run", cat="unit", scheme="CAVA"):
        timer = StageTimer()
        timer.add("batch.decide", 0.25, 0.2)
        worker.record_stages(timer, scheme="CAVA")
    tracer.absorb(worker.snapshot(), unit=0, attempt=1)
    return tracer.spans


class TestChromeTrace:
    def test_complete_events_and_process_metadata(self):
        trace = chrome_trace(_sample_spans())
        events = trace["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        m_events = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in x_events} == {
            "sweep.drain", "unit.run", "batch.decide"
        }
        # One named process lane per distinct track.
        assert {e["args"]["name"] for e in m_events} == {"scheduler", "worker-7"}
        lane_of = {e["args"]["name"]: e["pid"] for e in m_events}
        by_name = {e["name"]: e for e in x_events}
        assert by_name["sweep.drain"]["pid"] == lane_of["scheduler"]
        assert by_name["unit.run"]["pid"] == lane_of["worker-7"]

    def test_timestamps_relative_microseconds(self):
        trace = chrome_trace(_sample_spans())
        ts = [e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(ts) == 0.0
        assert all(t >= 0 for t in ts)

    def test_meta_and_cpu_in_args(self):
        trace = chrome_trace(_sample_spans())
        unit = next(
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "unit.run"
        )
        assert unit["args"]["scheme"] == "CAVA"
        assert "cpu_ms" in unit["args"]

    def test_registry_timeseries_become_counter_events(self):
        registry = MetricsRegistry()
        series = registry.timeseries("rss_bytes", labels={"pid": "7"})
        series.observe(100.0, t=10.0)
        series.observe(200.0, t=11.0)
        trace = chrome_trace(_sample_spans(), registry)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 2
        assert counters[0]["name"] == 'rss_bytes{pid=7}'
        assert counters[0]["args"] == {"value": 100.0}

    def test_empty_inputs(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_write_round_trips_json(self, tmp_path):
        path = tmp_path / "deep" / "trace.json"
        out = write_chrome_trace(_sample_spans(), path)
        assert out == path
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) >= 3


class TestAggregations:
    def test_span_totals(self):
        totals = span_totals(_sample_spans())
        assert totals["batch.decide"]["wall_s"] == pytest.approx(0.25)
        assert totals["batch.decide"]["count"] == 1
        assert set(totals) == {"sweep.drain", "unit.run", "batch.decide"}

    def test_stage_breakdown_groups_by_scheme(self):
        breakdown = stage_breakdown(_sample_spans())
        assert set(breakdown) == {"CAVA"}
        decide = breakdown["CAVA"]["batch.decide"]
        assert decide["wall_s"] == pytest.approx(0.25)
        assert decide["cpu_s"] == pytest.approx(0.2)
        assert decide["count"] == 1

    def test_stage_breakdown_ignores_non_stage_spans(self):
        spans = [s for s in _sample_spans() if s["cat"] != "stage"]
        assert stage_breakdown(spans) == {}


class TestResourceSampler:
    def test_sample_once_records_rss(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval_s=60.0, include_children=False)
        sampler.sample_once()
        series = [
            m for m in registry.metrics() if m.name == RSS_BYTES_METRIC
        ]
        assert len(series) == 1
        assert series[0].value > 0  # this process certainly has RSS
        assert dict(series[0].labels)["role"] == "parent"

    def test_second_sample_adds_cpu_percent(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval_s=60.0, include_children=False)
        sampler.sample_once()
        sum(range(200_000))  # burn a little CPU between samples
        sampler.sample_once()
        names = {m.name for m in registry.metrics()}
        assert CPU_PERCENT_METRIC in names

    def test_context_manager_runs_thread(self):
        registry = MetricsRegistry()
        with ResourceSampler(registry, interval_s=0.05, include_children=False):
            pass  # start() takes a baseline sample; stop() a final one
        assert any(m.name == RSS_BYTES_METRIC for m in registry.metrics())

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            ResourceSampler(MetricsRegistry(), interval_s=0.0)


class TestMetricsServer:
    def test_serves_live_registry(self):
        registry = MetricsRegistry()
        registry.counter("sessions_total", "sessions").inc(3)
        with MetricsServer(registry, port=0) as server:
            body = urllib.request.urlopen(server.url, timeout=5).read().decode()
            assert "sessions_total 3" in body
            registry.counter("sessions_total").inc(2)  # live mutation
            body = urllib.request.urlopen(server.url, timeout=5).read().decode()
            assert "sessions_total 5" in body

    def test_root_path_and_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            root = f"http://{server.host}:{server.port}/"
            assert urllib.request.urlopen(root, timeout=5).status == 200
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{server.host}:{server.port}/nope", timeout=5
                )


class TestProgressBoard:
    def test_write_and_load_round_trip(self, tmp_path):
        board = ProgressBoard(tmp_path, min_interval_s=0.0)
        board.update(
            force=True,
            phase="running",
            workers=2,
            total_sessions=40,
            completed_sessions=10,
            cached_sessions=5,
        )
        progress = load_progress(tmp_path)
        assert progress["phase"] == "running"
        assert progress["sessions_per_s"] > 0
        assert progress["eta_s"] is not None
        assert progress["elapsed_s"] >= 0

    def test_throttle_coalesces_unforced_writes(self, tmp_path):
        board = ProgressBoard(tmp_path, min_interval_s=3600.0)
        board.update(force=True, phase="running", completed_sessions=1)
        board.update(completed_sessions=2)  # throttled: no write
        assert load_progress(tmp_path)["completed_sessions"] == 1
        board.close()  # forced final write carries merged state
        progress = load_progress(tmp_path)
        assert progress["completed_sessions"] == 2
        assert progress["phase"] == "done"

    def test_load_missing_returns_none(self, tmp_path):
        assert load_progress(tmp_path / "nowhere") is None


class TestRenderTop:
    def test_frame_contains_progress_and_schemes(self):
        frame = render_top(
            {
                "phase": "running",
                "workers": 4,
                "elapsed_s": 90.0,
                "total_units": 8,
                "done_units": 4,
                "failed_units": 1,
                "total_sessions": 100,
                "completed_sessions": 40,
                "cached_sessions": 10,
                "sessions_per_s": 2.5,
                "eta_s": 20.0,
                "schemes": {
                    "CAVA": {
                        "sessions": 40,
                        "unit_seconds": 12.5,
                        "stages": {
                            "batch.decide": {"wall_s": 1.5, "cpu_s": 1.4, "count": 3}
                        },
                    }
                },
            }
        )
        assert "phase running" in frame
        assert "workers 4" in frame
        assert "units 4/8 done (1 failed)" in frame
        assert "sessions 50/100" in frame
        assert "1m30s" in frame
        assert "CAVA" in frame
        assert "decide=1.50s" in frame
        assert "50.0%" in frame

    def test_minimal_progress_renders(self):
        frame = render_top({"phase": "starting"})
        assert "phase starting" in frame
