"""Tests for the hierarchical span tracer and the stage timer."""

import pickle

import pytest

from repro.telemetry.spans import SpanTracer, StageTimer, maybe_span


class TestSpanTracer:
    def test_nesting_records_parent_indices(self):
        tracer = SpanTracer("sched")
        with tracer.span("outer", cat="sched"):
            with tracer.span("inner", cat="unit"):
                pass
            with tracer.span("sibling", cat="unit"):
                pass
        names = [s["name"] for s in tracer.spans]
        assert names == ["outer", "inner", "sibling"]
        assert tracer.spans[0]["parent"] == -1
        assert tracer.spans[1]["parent"] == 0
        assert tracer.spans[2]["parent"] == 0

    def test_durations_and_track(self):
        tracer = SpanTracer("worker-1")
        with tracer.span("work"):
            sum(range(1000))
        span = tracer.spans[0]
        assert span["dur_s"] >= 0.0
        assert span["cpu_s"] >= 0.0
        assert span["track"] == "worker-1"
        assert span["start_s"] > 1e9  # epoch-anchored wall clock

    def test_annotate_merges_meta(self):
        tracer = SpanTracer()
        with tracer.span("unit.run", scheme="CAVA") as handle:
            handle.annotate(sessions=12)
        assert tracer.spans[0]["meta"] == {"scheme": "CAVA", "sessions": 12}

    def test_exception_closes_span_with_error_meta(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("unit.run"):
                raise RuntimeError("boom")
        span = tracer.spans[0]
        assert span["meta"]["error"] == "RuntimeError"
        assert span["dur_s"] >= 0.0
        # The stack unwound: a following span is a root, not a child.
        with tracer.span("next"):
            pass
        assert tracer.spans[1]["parent"] == -1

    def test_record_appends_premeasured_span(self):
        tracer = SpanTracer()
        tracer.record("shm.attach", start_s=123.0, dur_s=0.5, cat="worker")
        span = tracer.spans[0]
        assert (span["start_s"], span["dur_s"], span["parent"]) == (123.0, 0.5, -1)

    def test_record_stages_emits_aggregates_under_open_span(self):
        tracer = SpanTracer()
        timer = StageTimer()
        timer.add("batch.estimate", 0.1, 0.08)
        timer.add("batch.decide", 0.2, 0.19)
        timer.add("batch.estimate", 0.3, 0.28)
        with tracer.span("unit.batch"):
            tracer.record_stages(timer, scheme="CAVA")
        stages = {s["name"]: s for s in tracer.spans if s["cat"] == "stage"}
        assert set(stages) == {"batch.estimate", "batch.decide"}
        est = stages["batch.estimate"]
        assert est["dur_s"] == pytest.approx(0.4)
        assert est["cpu_s"] == pytest.approx(0.36)
        assert est["meta"]["count"] == 2
        assert est["meta"]["aggregate"] is True
        assert est["meta"]["scheme"] == "CAVA"
        # Nested under the open unit.batch span.
        assert all(s["parent"] == 0 for s in stages.values())

    def test_snapshot_is_picklable_and_detached(self):
        tracer = SpanTracer()
        with tracer.span("a", key="v"):
            pass
        snap = tracer.snapshot()
        restored = pickle.loads(pickle.dumps(snap))
        assert restored == tracer.spans
        snap[0]["meta"]["key"] = "mutated"
        assert tracer.spans[0]["meta"]["key"] == "v"

    def test_absorb_rebases_parents_and_tags_meta(self):
        parent = SpanTracer("scheduler")
        with parent.span("sweep.drain"):
            pass
        worker = SpanTracer("worker-9")
        with worker.span("unit.run"):
            with worker.span("unit.batch"):
                pass
        parent.absorb(worker.snapshot(), unit=3, attempt=1)
        absorbed = parent.spans[1:]
        assert [s["name"] for s in absorbed] == ["unit.run", "unit.batch"]
        assert absorbed[0]["parent"] == -1  # foreign roots stay roots
        # unit.batch's parent re-bases to unit.run's index in the
        # stitched list (offset 1 for the scheduler's own span).
        assert absorbed[1]["parent"] == 1
        assert all(s["track"] == "worker-9" for s in absorbed)
        assert all(s["meta"]["unit"] == 3 for s in absorbed)
        assert all(s["meta"]["attempt"] == 1 for s in absorbed)

    def test_absorb_track_override(self):
        parent = SpanTracer()
        parent.absorb(
            [{"name": "x", "cat": "", "start_s": 0.0, "dur_s": 0.0,
              "cpu_s": 0.0, "parent": -1, "pid": 1, "track": "old", "meta": {}}],
            track="new",
        )
        assert parent.spans[0]["track"] == "new"


class TestMaybeSpan:
    def test_none_tracer_is_shared_noop(self):
        a = maybe_span(None, "anything", cat="unit", scheme="CAVA")
        b = maybe_span(None, "other")
        assert a is b  # one shared singleton, no allocation per call
        with a as handle:
            handle.annotate(ignored=True)  # must not raise

    def test_real_tracer_records(self):
        tracer = SpanTracer()
        with maybe_span(tracer, "unit.run", cat="unit", scheme="RBA"):
            pass
        assert tracer.spans[0]["name"] == "unit.run"
        assert tracer.spans[0]["meta"] == {"scheme": "RBA"}


class TestStageTimer:
    def test_accumulates_and_counts(self):
        timer = StageTimer()
        timer.add("decide", 0.5, 0.4)
        timer.add("decide", 0.25, 0.2)
        timer.add("advance", 1.0)
        assert timer.totals["decide"] == [0.75, pytest.approx(0.6), 2]
        assert timer.totals["advance"] == [1.0, 0.0, 1]

    def test_as_dict_shape(self):
        timer = StageTimer()
        timer.add("estimate", 0.125, 0.1)
        assert timer.as_dict() == {
            "estimate": {"wall_s": 0.125, "cpu_s": 0.1, "count": 1}
        }
