"""Tests for the controller tracing data model and session integration."""

import json

import numpy as np
import pytest

from repro.abr.rba import RateBasedAlgorithm
from repro.core.cava import cava_p123
from repro.network.estimator import HarmonicMeanEstimator, TracedEstimator
from repro.network.link import TraceLink
from repro.network.traces import NetworkTrace
from repro.player.session import run_session
from repro.telemetry.tracer import (
    ChunkRecord,
    ControllerStep,
    NullTracer,
    SessionTracer,
)


def constant_trace(mbps, duration_s=2000.0):
    return NetworkTrace(f"const-{mbps}", 1.0, np.full(int(duration_s), mbps * 1e6))


def make_record(chunk_index=0, **overrides):
    defaults = dict(
        chunk_index=chunk_index,
        level=2,
        size_bits=4e6,
        buffer_before_s=10.0,
        buffer_after_s=11.5,
        requested_idle_s=0.0,
        cap_idle_s=0.0,
        stall_s=0.0,
        download_start_s=5.0,
        download_finish_s=5.5,
        estimated_bandwidth_bps=6e6,
        realized_bandwidth_bps=8e6,
    )
    defaults.update(overrides)
    return ChunkRecord(**defaults)


class TestSessionTracerUnit:
    def test_step_attached_to_matching_chunk(self):
        tracer = SessionTracer()
        tracer.on_session_start("CAVA", "vid", "trace", 2)
        step = ControllerStep(50.0, 40.0, 12.0, 1.5, 1.25, 3.0, 4)
        tracer.on_controller_step(0, step)
        tracer.on_chunk(make_record(0))
        tracer.on_chunk(make_record(1))
        assert tracer.trace.records[0].controller is step
        assert tracer.trace.records[1].controller is None

    def test_session_start_resets_state(self):
        tracer = SessionTracer()
        tracer.on_session_start("CAVA", "vid", "t1", 1)
        tracer.on_controller_step(0, ControllerStep(50.0, 40.0, 12.0, 1.5, 1.0, 3.0, 1))
        tracer.on_chunk(make_record(0))
        tracer.on_session_start("CAVA", "vid", "t2", 1)
        assert tracer.trace.trace_name == "t2"
        assert tracer.trace.num_chunks == 0
        # the pending step from the first session must not leak
        tracer.on_chunk(make_record(0))
        assert tracer.trace.records[0].controller is None

    def test_bandwidth_events_and_startup(self):
        tracer = SessionTracer()
        tracer.on_session_start("RBA", "vid", "trace", 0)
        tracer.on_bandwidth_estimate(1.0, 5e6)
        tracer.on_bandwidth_sample(2.0, 6e6)
        tracer.on_session_end(4.5)
        kinds = [e.kind for e in tracer.trace.bandwidth_events]
        assert kinds == ["estimate", "sample"]
        assert tracer.trace.startup_delay_s == 4.5

    def test_null_tracer_collects_nothing(self):
        tracer = NullTracer()
        tracer.on_session_start("CAVA", "vid", "trace", 1)
        tracer.on_chunk(make_record(0))
        tracer.on_session_end(1.0)  # no state, no error


class TestSessionIntegration:
    @pytest.fixture(scope="class")
    def cava_traced(self, short_video):
        tracer = SessionTracer()
        result = run_session(
            cava_p123(), short_video, TraceLink(constant_trace(5.0)), tracer=tracer
        )
        return result, tracer.trace

    def test_one_record_per_chunk(self, short_video, cava_traced):
        result, trace = cava_traced
        assert trace.num_chunks == short_video.num_chunks
        assert [r.chunk_index for r in trace.records] == list(range(short_video.num_chunks))

    def test_identity_fields(self, short_video, cava_traced):
        _, trace = cava_traced
        assert trace.scheme == "CAVA"
        assert trace.video_name == short_video.name
        assert trace.trace_name == "const-5.0"

    def test_controller_step_on_every_chunk(self, cava_traced):
        _, trace = cava_traced
        for record in trace.records:
            step = record.controller
            assert step is not None
            assert 1 <= step.quartile <= 4
            assert step.lookahead_mbps > 0
            # Eq. 2: the PID error is target minus the buffer the
            # controller saw at decision time.
            assert step.error_s == pytest.approx(
                step.target_buffer_s - record.buffer_before_s
            )

    def test_records_match_session_result(self, cava_traced):
        result, trace = cava_traced
        for i, record in enumerate(trace.records):
            assert record.level == int(result.levels[i])
            assert record.size_bits == float(result.sizes_bits[i])
            assert record.download_start_s == float(result.download_start_s[i])
            assert record.buffer_after_s == float(result.buffer_after_s[i])
            assert record.requested_idle_s == float(result.requested_idle_s[i])
            assert record.cap_idle_s == float(result.cap_idle_s[i])
        assert trace.startup_delay_s == result.startup_delay_s

    def test_realized_bandwidth_positive(self, cava_traced):
        _, trace = cava_traced
        assert all(r.realized_bandwidth_bps > 0 for r in trace.records)

    def test_trace_json_dumps(self, cava_traced):
        # Every value must be a plain Python type, not a numpy scalar.
        _, trace = cava_traced
        parsed = json.loads(json.dumps(trace.to_dict()))
        assert len(parsed["records"]) == trace.num_chunks
        assert parsed["records"][0]["controller"]["quartile"] in (1, 2, 3, 4)

    def test_baseline_scheme_has_no_controller_steps(self, short_video):
        tracer = SessionTracer()
        run_session(
            RateBasedAlgorithm(),
            short_video,
            TraceLink(constant_trace(5.0)),
            tracer=tracer,
        )
        assert tracer.trace.num_chunks == short_video.num_chunks
        assert all(r.controller is None for r in tracer.trace.records)


class TestTracedEstimator:
    def test_forwards_and_records(self):
        tracer = SessionTracer()
        tracer.on_session_start("RBA", "vid", "trace", 0)
        plain = HarmonicMeanEstimator()
        traced = TracedEstimator(HarmonicMeanEstimator(), tracer)
        for estimator in (plain, traced):
            estimator.reset()
            estimator.observe(4e6, 0.5, 1.0)
            estimator.observe(6e6, 0.5, 2.0)
        assert traced.predict_bps(2.0) == plain.predict_bps(2.0)
        kinds = [e.kind for e in tracer.trace.bandwidth_events]
        assert kinds == ["sample", "sample", "estimate"]
        assert tracer.trace.bandwidth_events[0].bandwidth_bps == pytest.approx(8e6)

    def test_session_with_traced_estimator(self, short_video):
        tracer = SessionTracer()
        estimator = TracedEstimator(HarmonicMeanEstimator(), tracer)
        run_session(
            cava_p123(),
            short_video,
            TraceLink(constant_trace(5.0)),
            estimator=estimator,
            tracer=tracer,
        )
        samples = [e for e in tracer.trace.bandwidth_events if e.kind == "sample"]
        assert len(samples) == short_video.num_chunks
