"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "schemes"])
        assert args.seed == 7


class TestSchemes:
    def test_lists_all(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "CAVA" in out
        assert "RobustMPC" in out
        assert "PANDA/CQ max-min" in out


class TestDataset:
    def test_prints_sixteen_rows(self, capsys):
        assert main(["dataset"]) == 0
        out = capsys.readouterr().out
        assert out.count("youtube") == 8
        assert out.count("ffmpeg") == 8


class TestCharacterize:
    def test_known_video(self, capsys):
        assert main(["characterize", "ED-youtube-h264"]) == 0
        out = capsys.readouterr().out
        assert "Q4 quality gap" in out

    def test_unknown_video_exits(self):
        with pytest.raises(SystemExit, match="unknown video"):
            main(["characterize", "nope"])

    def test_fourx_video_available(self, capsys):
        assert main(["characterize", "ED-ffmpeg-h264-4x"]) == 0


class TestTraces:
    def test_writes_files(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert main(["traces", "lte", str(out_dir), "--count", "3"]) == 0
        files = sorted(out_dir.glob("*.txt"))
        assert len(files) == 3
        assert "wrote 3" in capsys.readouterr().out

    def test_files_loadable(self, tmp_path):
        from repro.network.traces import load_trace_file

        out_dir = tmp_path / "traces"
        main(["traces", "fcc", str(out_dir), "--count", "1"])
        trace = load_trace_file(next(out_dir.glob("*.txt")), interval_s=5.0)
        assert trace.num_intervals > 0


class TestManifest:
    def test_mpd_export(self, tmp_path, capsys):
        out = tmp_path / "video.mpd"
        assert main(["manifest", "ED-youtube-h264", str(out)]) == 0
        assert out.read_text().startswith("<?xml")

    def test_hls_export(self, tmp_path):
        out = tmp_path / "hls"
        assert main(["manifest", "ED-youtube-h264", str(out), "--format", "hls"]) == 0
        assert (out / "master.m3u8").exists()
        assert (out / "track0.m3u8").exists()

    def test_mpd_round_trip_via_cli_output(self, tmp_path):
        from repro.video.manifest_io import manifest_from_mpd

        out = tmp_path / "video.mpd"
        main(["manifest", "ED-youtube-h264", str(out)])
        manifest = manifest_from_mpd(out.read_text())
        assert manifest.num_tracks == 6


class TestRun:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "ED-youtube-h264", "--scheme", "RBA"]) == 0
        out = capsys.readouterr().out
        assert "q4_quality_mean" in out
        assert "rebuffer_s" in out

    def test_run_quality_scheme(self, capsys):
        assert main(["run", "ED-youtube-h264", "--scheme", "PANDA/CQ max-min"]) == 0


class TestRunEvents:
    def test_events_flag_prints_timeline(self, capsys):
        assert main(
            ["run", "ED-youtube-h264", "--scheme", "RBA", "--events"]
        ) == 0
        out = capsys.readouterr().out
        assert "q4_quality_mean" in out  # metrics still printed first
        assert "playback started" in out

    def test_scheme_alias_accepted(self, capsys):
        assert main(
            ["run", "ED-youtube-h264", "--scheme", "cava-p123"]
        ) == 0
        assert "CAVA on" in capsys.readouterr().out


class TestTrace:
    def test_controller_timeline_columns(self, capsys):
        assert main(
            ["trace", "--scheme", "cava-p123", "--video", "ED-youtube-h264",
             "--trace-seed", "3", "--limit", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-chunk controller timeline" in out
        for column in ("target", "err", "u", "alpha", "est Mbps", "real Mbps", "Q"):
            assert column in out
        assert "Q4" in out or "Q1" in out  # quartile classes rendered

    def test_baseline_scheme_dashes(self, capsys):
        assert main(
            ["trace", "--scheme", "RBA", "--video", "ED-youtube-h264", "--limit", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "RBA on" in out
        assert " - " in out  # no controller columns for baselines

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            main(["trace", "--scheme", "nope", "--video", "ED-youtube-h264"])


class TestCompare:
    def test_compare_table(self, capsys):
        assert main(
            ["compare", "ED-youtube-h264", "--traces", "2", "--schemes", "CAVA", "RBA"]
        ) == 0
        out = capsys.readouterr().out
        assert "CAVA" in out and "RBA" in out
        assert "Q4 quality" in out

    def test_metrics_out_writes_prometheus_dump(self, tmp_path, capsys):
        path = tmp_path / "sweep.prom"
        assert main(
            ["compare", "ED-youtube-h264", "--traces", "2",
             "--schemes", "CAVA", "RBA", "--metrics-out", str(path)]
        ) == 0
        text = path.read_text()
        assert "repro_sweep_sessions_completed_total 4" in text
        assert "# TYPE repro_sweep_unit_seconds histogram" in text
        assert "wrote sweep metrics" in capsys.readouterr().out


class TestFaultsAndPolicyFlags:
    def test_compare_with_faults_prints_plan(self, capsys):
        assert main(
            ["compare", "ED-youtube-h264", "--traces", "2", "--schemes", "RBA",
             "--faults", "outages:p=0.02,seed=7", "--on-error", "skip"]
        ) == 0
        out = capsys.readouterr().out
        assert "faults: outages(p=0.02" in out
        assert "seed=7" in out

    def test_compare_faults_change_results(self, capsys):
        main(["compare", "ED-youtube-h264", "--traces", "2", "--schemes", "RBA"])
        clean = capsys.readouterr().out
        main(["compare", "ED-youtube-h264", "--traces", "2", "--schemes", "RBA",
              "--faults", "scale:factor=0.3"])
        faulted = capsys.readouterr().out
        clean_row = [line for line in clean.splitlines() if line.startswith("RBA")]
        faulted_row = [line for line in faulted.splitlines() if line.startswith("RBA")]
        assert clean_row != faulted_row

    def test_bad_faults_spec_exits_with_message(self):
        with pytest.raises(SystemExit, match="--faults"):
            main(["compare", "ED-youtube-h264", "--traces", "2",
                  "--schemes", "RBA", "--faults", "bogus:p=1"])

    def test_run_with_faults_and_events(self, capsys):
        assert main(
            ["run", "ED-youtube-h264", "--scheme", "RBA", "--events",
             "--faults", "latency:p=0.2,spike_s=1"]
        ) == 0
        out = capsys.readouterr().out
        assert "faults: latency(p=0.2" in out
        assert "playback started" in out

    def test_on_error_default_is_raise(self):
        args = build_parser().parse_args(["compare", "v"])
        assert args.on_error == "raise"
        assert args.max_retries == 2
        assert args.faults is None


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "schemes"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0
        assert "CAVA" in proc.stdout
