"""Tests for repro.util.rng: determinism and stream independence."""

import numpy as np
import pytest

from repro.util.rng import RngStream, derive_rng, spawn_rngs


class TestDeriveRng:
    def test_same_inputs_same_stream(self):
        a = derive_rng(42, "x", "y")
        b = derive_rng(42, "x", "y")
        assert np.array_equal(a.random(10), b.random(10))

    def test_different_seed_different_stream(self):
        a = derive_rng(1, "x").random(8)
        b = derive_rng(2, "x").random(8)
        assert not np.array_equal(a, b)

    def test_different_labels_different_stream(self):
        a = derive_rng(7, "alpha").random(8)
        b = derive_rng(7, "beta").random(8)
        assert not np.array_equal(a, b)

    def test_label_order_matters(self):
        a = derive_rng(7, "a", "b").random(8)
        b = derive_rng(7, "b", "a").random(8)
        assert not np.array_equal(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            derive_rng(-1)

    def test_no_labels_is_valid(self):
        assert derive_rng(5).random() is not None


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5, "traces")) == 5

    def test_streams_differ(self):
        rngs = spawn_rngs(0, 3, "x")
        draws = [rng.random(4).tolist() for rng in rngs]
        assert draws[0] != draws[1] != draws[2]

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)


class TestRngStream:
    def test_replayable(self):
        s1 = RngStream(seed=9, name="n")
        s2 = RngStream(seed=9, name="n")
        assert s1.child("a").random() == s2.child("a").random()

    def test_repeated_child_calls_differ(self):
        s = RngStream(seed=9)
        assert s.child("a").random() != s.child("a").random()

    def test_fixed_is_order_independent(self):
        s1 = RngStream(seed=3)
        s1.child("x")  # consume one
        s2 = RngStream(seed=3)
        assert s1.fixed("y").random() == s2.fixed("y").random()

    def test_fork_independent_namespace(self):
        s = RngStream(seed=3)
        f1 = s.fork("sub")
        f2 = RngStream(seed=3).fork("sub")
        assert f1.child("a").random() == f2.child("a").random()

    def test_integers_shape_and_range(self):
        s = RngStream(seed=1)
        values = s.integers("x", 0, 10, 100)
        assert values.shape == (100,)
        assert values.min() >= 0 and values.max() < 10

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStream(seed=-4)

    def test_repr_mentions_seed(self):
        assert "seed=5" in repr(RngStream(seed=5))
