"""Tests for repro.util.stats, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    cdf_points,
    coefficient_of_variation,
    harmonic_mean,
    pearson_correlation,
    quantile,
    quartile_thresholds,
    running_mean,
    spearman_correlation,
)

positive_lists = st.lists(
    st.floats(min_value=0.1, max_value=1e6, allow_nan=False), min_size=1, max_size=60
)


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 4.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert harmonic_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            harmonic_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            harmonic_mean([])

    def test_robust_to_outlier(self):
        """The §5.5 rationale: one huge sample barely moves the estimate."""
        base = harmonic_mean([2.0] * 5)
        with_outlier = harmonic_mean([2.0] * 4 + [200.0])
        assert with_outlier < 1.3 * base

    @given(positive_lists)
    @settings(max_examples=50)
    def test_never_exceeds_arithmetic_mean(self, values):
        assert harmonic_mean(values) <= np.mean(values) + 1e-9


class TestQuantiles:
    def test_quartile_thresholds_ordering(self):
        q25, q50, q75 = quartile_thresholds(list(range(100)))
        assert q25 < q50 < q75

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            quantile([1, 2, 3], 1.5)

    def test_median(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == pytest.approx(2.0)

    @given(positive_lists.filter(lambda xs: len(xs) >= 4))
    @settings(max_examples=50)
    def test_thresholds_within_range(self, values):
        q25, q50, q75 = quartile_thresholds(values)
        assert min(values) <= q25 <= q50 <= q75 <= max(values)


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            pearson_correlation([1, 1, 1], [1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_spearman_monotone_is_one(self):
        xs = [1.0, 2.0, 5.0, 9.0]
        ys = [x**3 for x in xs]
        assert spearman_correlation(xs, ys) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        value = spearman_correlation([1, 1, 2, 3], [1, 2, 3, 4])
        assert -1.0 <= value <= 1.0

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=30).filter(
            lambda xs: np.std(xs) > 1e-6
        )
    )
    @settings(max_examples=50)
    def test_pearson_in_unit_interval(self, xs):
        ys = [x * 2 + 1 for x in xs]
        value = pearson_correlation(xs, ys)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestCdfPoints:
    def test_sorted_and_normalized(self):
        values, fractions = cdf_points([3.0, 1.0, 2.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert fractions.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    @given(positive_lists)
    @settings(max_examples=50)
    def test_fractions_monotone_ending_at_one(self, values):
        _, fractions = cdf_points(values)
        assert np.all(np.diff(fractions) >= 0)
        assert fractions[-1] == pytest.approx(1.0)


class TestRunningMean:
    def test_forward_window(self):
        result = running_mean([1.0, 2.0, 3.0, 4.0], window=2)
        assert result.tolist() == pytest.approx([1.5, 2.5, 3.5, 4.0])

    def test_window_one_is_identity(self):
        values = [5.0, 1.0, 9.0]
        assert running_mean(values, 1).tolist() == pytest.approx(values)

    def test_window_larger_than_input(self):
        result = running_mean([2.0, 4.0], window=10)
        assert result.tolist() == pytest.approx([3.0, 4.0])

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            running_mean([1.0], window=0)

    @given(positive_lists, st.integers(min_value=1, max_value=20))
    @settings(max_examples=50)
    def test_bounded_by_extremes(self, values, window):
        result = running_mean(values, window)
        assert np.all(result >= min(values) - 1e-9)
        assert np.all(result <= max(values) + 1e-9)


class TestCoefficientOfVariation:
    def test_constant_is_zero(self):
        assert coefficient_of_variation([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError, match="zero mean"):
            coefficient_of_variation([-1.0, 1.0])

    def test_known_value(self):
        values = [1.0, 3.0]
        assert coefficient_of_variation(values) == pytest.approx(1.0 / 2.0)
