"""Tests for repro.util.units conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import (
    bits_to_megabits,
    bits_to_megabytes,
    bps_to_mbps,
    bytes_to_bits,
    bytes_to_megabits,
    mbps_to_bps,
    megabits_to_bits,
    megabits_to_bytes,
)


def test_bytes_to_bits():
    assert bytes_to_bits(1) == 8


def test_megabit_round_trip():
    assert bits_to_megabits(megabits_to_bits(3.5)) == pytest.approx(3.5)


def test_bytes_to_megabits():
    assert bytes_to_megabits(125_000) == pytest.approx(1.0)


def test_megabits_to_bytes():
    assert megabits_to_bytes(1.0) == pytest.approx(125_000)


def test_rate_round_trip():
    assert bps_to_mbps(mbps_to_bps(2.25)) == pytest.approx(2.25)


def test_bits_to_megabytes():
    assert bits_to_megabytes(8_000_000) == pytest.approx(1.0)


@given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
def test_conversions_preserve_sign_and_scale(bits):
    assert bits_to_megabits(bits) * 1e6 == pytest.approx(bits, rel=1e-9, abs=1e-9)
    assert bits_to_megabytes(bits) * 8e6 == pytest.approx(bits, rel=1e-9, abs=1e-9)
