"""Tests for repro.util.validation."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckFinite:
    def test_passes_through(self):
        assert check_finite(3.5, "x") == 3.5

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_finite(bad, "x")

    def test_coerces_int(self):
        assert check_finite(3, "x") == 3.0


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.001, "x") == 0.001

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="positive"):
            check_positive(bad, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValueError, match="window_s"):
            check_positive(-1, "window_s")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative(-0.1, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_probability(bad, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(2.0, "x", 2.0, 3.0) == 2.0
        assert check_in_range(3.0, "x", 2.0, 3.0) == 3.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="x"):
            check_in_range(3.5, "x", 2.0, 3.0)
