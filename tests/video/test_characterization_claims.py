"""The §2–§3 characterization claims, asserted against the synthesized
dataset. These tests pin the calibration: if the generative model drifts,
the paper's facts stop holding and these fail."""

import numpy as np
import pytest

from repro.analysis.characterization import (
    characterize,
    quartile_quality_profile,
    quartile_siti_separation,
)
from repro.video.classify import ChunkClassifier


class TestSection2BitrateVariability:
    def test_cov_in_paper_band(self, ed_ffmpeg_video):
        """§2: per-track CoV between 0.3 and 0.6 (we allow a little slack)."""
        covs = [t.bitrate_cov for t in ed_ffmpeg_video.tracks]
        assert min(covs) > 0.25
        assert max(covs) < 0.75

    def test_peak_to_average_in_band(self, ed_ffmpeg_video):
        """§2: peak/avg between 1.1x and ~2.4x for the 2x-capped encodes."""
        ratios = [t.peak_to_average_ratio for t in ed_ffmpeg_video.tracks]
        assert min(ratios) > 1.1
        assert max(ratios) < 2.5

    def test_fourx_exceeds_twox_peak(self, ed_ffmpeg_video, fourx_video):
        """§3.3: the 4x cap admits substantially higher peaks."""
        two = max(t.peak_to_average_ratio for t in ed_ffmpeg_video.tracks)
        four = max(t.peak_to_average_ratio for t in fourx_video.tracks)
        assert four > two + 0.3


class TestSection311ComplexityProxy:
    def test_q4_siti_separation(self, ed_ffmpeg_video):
        """Fig. 2: most Q4 chunks clear (SI>25, TI>7); few Q1/Q2 do."""
        fractions = quartile_siti_separation(ed_ffmpeg_video)
        assert fractions[4] > 0.55
        assert fractions[1] < 0.25
        assert fractions[2] < 0.35
        assert fractions[4] > fractions[1] + 0.4

    def test_size_tracks_complexity(self, ed_ffmpeg_video):
        summary = characterize(ed_ffmpeg_video)
        assert summary.size_complexity_corr > 0.7

    def test_cross_track_consistency(self, ed_ffmpeg_video):
        summary = characterize(ed_ffmpeg_video)
        assert summary.min_cross_track_correlation > 0.85


class TestSection312QualityByQuartile:
    @pytest.mark.parametrize("metric", ["vmaf_phone", "vmaf_tv", "psnr", "ssim"])
    def test_quality_decreases_q1_to_q4(self, ed_youtube_video, metric):
        """Fig. 3: Q1..Q4 have increasing sizes but decreasing quality,
        under every §3.1.2 metric."""
        medians = quartile_quality_profile(ed_youtube_video, metric)
        assert medians[1] >= medians[2] >= medians[3] >= medians[4]
        assert medians[1] > medians[4]

    def test_q4_gap_pronounced(self, ed_youtube_video):
        """Fig. 3: 'the quality gap between Q4 and Q1–Q3 chunks is
        particularly large'."""
        medians = quartile_quality_profile(ed_youtube_video, "vmaf_phone")
        q13_mean = np.mean([medians[q] for q in (1, 2, 3)])
        assert q13_mean - medians[4] > 5.0

    def test_q4_has_most_bits_yet_least_quality(self, ed_youtube_video):
        classifier = ChunkClassifier.from_video(ed_youtube_video)
        track = ed_youtube_video.track(classifier.reference_track)
        q4 = classifier.categories == 4
        q1 = classifier.categories == 1
        assert np.mean(track.chunk_sizes_bits[q4]) > np.mean(track.chunk_sizes_bits[q1])
        assert np.median(track.qualities["vmaf_phone"][q4]) < np.median(
            track.qualities["vmaf_phone"][q1]
        )

    def test_holds_for_h265(self, ed_h265_video):
        """§3.1.2: 'similar observations for H.265 encoded videos'."""
        medians = quartile_quality_profile(ed_h265_video, "vmaf_phone")
        assert medians[1] > medians[4]


class TestSection33LargerCap:
    def test_fourx_q4_still_lower(self, fourx_video):
        """§3.3: even at 4x cap, Q4 chunks stay significantly below the
        quality of Q1–Q3 chunks."""
        medians = quartile_quality_profile(fourx_video, "vmaf_phone")
        q13_mean = np.mean([medians[q] for q in (1, 2, 3)])
        assert q13_mean - medians[4] > 4.0

    def test_fourx_ordering(self, fourx_video):
        medians = quartile_quality_profile(fourx_video, "vmaf_phone")
        assert medians[1] >= medians[3] > medians[4]


class TestWholeDatasetSanity:
    def test_characterize_summary_fields(self, ed_ffmpeg_video):
        summary = characterize(ed_ffmpeg_video)
        assert summary.video_name == "ED-ffmpeg-h264"
        assert summary.q4_quality_gap > 0
        assert 0 < summary.cov_range[0] <= summary.cov_range[1]
