"""Tests for repro.video.classify: the size-quartile complexity proxy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.classify import (
    ChunkClassifier,
    classify_sizes,
    classify_sizes_quantiles,
    cross_track_category_correlation,
    reference_level,
)


class TestClassifySizes:
    def test_quartiles_roughly_balanced(self):
        rng = np.random.default_rng(0)
        categories = classify_sizes(rng.random(400))
        for q in range(1, 5):
            fraction = np.mean(categories == q)
            assert 0.2 <= fraction <= 0.3

    def test_largest_chunk_is_q4(self):
        sizes = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 100.0]
        assert classify_sizes(sizes)[-1] == 4

    def test_smallest_chunk_is_q1(self):
        sizes = [0.01, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        assert classify_sizes(sizes)[0] == 1

    def test_too_few_chunks_rejected(self):
        with pytest.raises(ValueError, match="at least 4"):
            classify_sizes([1.0, 2.0, 3.0])

    def test_monotone_in_size(self):
        sizes = np.linspace(1, 100, 40)
        categories = classify_sizes(sizes)
        assert np.all(np.diff(categories) >= 0)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=8, max_size=100))
    @settings(max_examples=50)
    def test_property_labels_in_range(self, sizes):
        categories = classify_sizes(sizes)
        assert set(np.unique(categories)).issubset({1, 2, 3, 4})


class TestClassifyQuantiles:
    def test_five_classes(self):
        rng = np.random.default_rng(0)
        categories = classify_sizes_quantiles(rng.random(500), 5)
        assert set(np.unique(categories)) == {1, 2, 3, 4, 5}

    def test_matches_quartiles_for_four(self):
        rng = np.random.default_rng(1)
        sizes = rng.random(200)
        assert np.array_equal(classify_sizes_quantiles(sizes, 4), classify_sizes(sizes))

    def test_rejects_one_class(self):
        with pytest.raises(ValueError, match="num_classes"):
            classify_sizes_quantiles([1.0, 2.0, 3.0], 1)


class TestReferenceLevel:
    @pytest.mark.parametrize("num_tracks,expected", [(6, 3), (5, 2), (1, 0), (2, 1)])
    def test_middle(self, num_tracks, expected):
        assert reference_level(num_tracks) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            reference_level(0)


class TestChunkClassifier:
    def test_from_video_reference_is_middle(self, ed_ffmpeg_video):
        classifier = ChunkClassifier.from_video(ed_ffmpeg_video)
        assert classifier.reference_track == 3
        assert classifier.num_chunks == ed_ffmpeg_video.num_chunks

    def test_fractions_sum_to_one(self, ed_classifier):
        assert sum(ed_classifier.category_fractions().values()) == pytest.approx(1.0)

    def test_complex_positions_match_is_complex(self, ed_classifier):
        positions = set(ed_classifier.complex_positions().tolist())
        for index in range(ed_classifier.num_chunks):
            assert (index in positions) == ed_classifier.is_complex(index)

    def test_bad_reference_rejected(self, ed_ffmpeg_video):
        with pytest.raises(IndexError):
            ChunkClassifier.from_manifest(ed_ffmpeg_video.manifest(), reference_track=9)

    def test_categories_consistent_across_reference_choice(self, ed_ffmpeg_video):
        """§3.1.1 Property 2 in classifier form: classifying from track 2
        vs track 4 agrees on most chunks."""
        a = ChunkClassifier.from_video(ed_ffmpeg_video, reference_track=2)
        b = ChunkClassifier.from_video(ed_ffmpeg_video, reference_track=4)
        agreement = np.mean(a.categories == b.categories)
        assert agreement > 0.7


class TestCrossTrackCorrelation:
    def test_paper_claim_close_to_one(self, ed_ffmpeg_video):
        """§3.1.1: 'all the correlation values are close to 1'."""
        matrix = cross_track_category_correlation(ed_ffmpeg_video)
        off_diag = matrix[~np.eye(matrix.shape[0], dtype=bool)]
        assert off_diag.min() > 0.85

    def test_matrix_symmetric_unit_diagonal(self, ed_ffmpeg_video):
        matrix = cross_track_category_correlation(ed_ffmpeg_video)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)
