"""Tests for repro.video.dataset: the 16-video dataset analogue."""

import numpy as np
import pytest

from repro.video.dataset import (
    FFMPEG_SPECS,
    YOUTUBE_SPECS,
    VideoSpec,
    build_cbr_counterpart,
    build_dataset,
    build_video,
    fourx_spec,
    standard_dataset_specs,
)


class TestSpecs:
    def test_sixteen_videos(self):
        specs = standard_dataset_specs()
        assert len(specs) == 16
        assert len({s.name for s in specs}) == 16

    def test_eight_ffmpeg_eight_youtube(self):
        assert len(FFMPEG_SPECS) == 8
        assert len(YOUTUBE_SPECS) == 8

    def test_ffmpeg_chunk_durations(self):
        assert all(s.chunk_duration_s == 2.0 for s in FFMPEG_SPECS)

    def test_youtube_chunk_durations(self):
        assert all(s.chunk_duration_s == 5.0 for s in YOUTUBE_SPECS)

    def test_ffmpeg_covers_both_codecs(self):
        codecs = {s.codec for s in FFMPEG_SPECS}
        assert codecs == {"h264", "h265"}

    def test_youtube_all_h264(self):
        assert all(s.codec == "h264" for s in YOUTUBE_SPECS)

    def test_genres_cover_paper_categories(self):
        genres = {s.genre for s in standard_dataset_specs()}
        assert {"animation", "scifi", "sports", "animal", "nature", "action"} <= genres

    def test_fourx_spec(self):
        spec = fourx_spec()
        assert spec.cap_ratio == 4.0
        assert spec.title == "ED"

    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            VideoSpec("x", "X", "animation", "vimeo", "h264", 2.0, 2.0)


class TestBuildVideo:
    def test_deterministic(self):
        spec = FFMPEG_SPECS[0]
        a = build_video(spec, seed=1)
        b = build_video(spec, seed=1)
        assert np.array_equal(a.track(3).chunk_sizes_bits, b.track(3).chunk_sizes_bits)

    def test_seed_changes_content(self):
        spec = FFMPEG_SPECS[0]
        a = build_video(spec, seed=1)
        b = build_video(spec, seed=2)
        assert not np.array_equal(a.track(3).chunk_sizes_bits, b.track(3).chunk_sizes_bits)

    def test_codec_pair_shares_content(self):
        """H.264 and H.265 encodes of a title share the scene timeline."""
        h264 = build_video(FFMPEG_SPECS[0], seed=0)
        h265 = build_video(FFMPEG_SPECS[1], seed=0)
        assert h264.tracks[0].num_chunks == h265.tracks[0].num_chunks
        assert np.array_equal(h264.complexity, h265.complexity)

    def test_ten_minute_videos(self):
        video = build_video(FFMPEG_SPECS[0], seed=0)
        assert video.duration_s == pytest.approx(600.0)

    def test_six_tracks(self):
        video = build_video(FFMPEG_SPECS[0], seed=0)
        assert video.num_tracks == 6
        assert [t.resolution for t in video.tracks] == [144, 240, 360, 480, 720, 1080]


class TestBuildDataset:
    def test_builds_all(self):
        videos = build_dataset(standard_dataset_specs()[:4], seed=0)
        assert len(videos) == 4

    def test_duplicate_names_rejected(self):
        spec = FFMPEG_SPECS[0]
        with pytest.raises(ValueError, match="duplicate"):
            build_dataset([spec, spec], seed=0)


class TestCbrCounterpart:
    def test_cbr_flat(self):
        video = build_cbr_counterpart(FFMPEG_SPECS[0], seed=0)
        assert video.encoding == "cbr"
        assert all(t.bitrate_cov < 0.05 for t in video.tracks)

    def test_same_average_bitrate_as_vbr(self):
        vbr = build_video(FFMPEG_SPECS[0], seed=0)
        cbr = build_cbr_counterpart(FFMPEG_SPECS[0], seed=0)
        for level in range(6):
            assert cbr.track(level).average_bitrate_bps == pytest.approx(
                vbr.track(level).average_bitrate_bps, rel=0.05
            )
