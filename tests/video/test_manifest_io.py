"""Tests for DASH MPD / HLS serialization of manifests."""

import numpy as np
import pytest

from repro.video.manifest_io import (
    manifest_from_hls,
    manifest_from_mpd,
    manifest_to_hls,
    manifest_to_mpd,
)


@pytest.fixture(scope="module")
def manifest(request):
    return request.getfixturevalue("ed_youtube_video").manifest()


class TestMpdRoundTrip:
    def test_round_trip_exact(self, manifest):
        document = manifest_to_mpd(manifest)
        parsed = manifest_from_mpd(document)
        assert parsed.video_name == manifest.video_name
        assert parsed.num_tracks == manifest.num_tracks
        assert parsed.num_chunks == manifest.num_chunks
        assert parsed.chunk_duration_s == pytest.approx(manifest.chunk_duration_s)
        assert np.allclose(parsed.chunk_sizes_bits, manifest.chunk_sizes_bits, rtol=1e-6)
        assert parsed.resolutions == manifest.resolutions

    def test_document_is_valid_xml_with_dash_ns(self, manifest):
        document = manifest_to_mpd(manifest)
        assert document.startswith("<?xml")
        assert "urn:mpeg:dash:schema:mpd:2011" in document
        assert "SegmentList" in document

    def test_declared_bitrates_preserved(self, manifest):
        parsed = manifest_from_mpd(manifest_to_mpd(manifest))
        assert np.allclose(
            parsed.declared_avg_bitrates_bps, manifest.declared_avg_bitrates_bps, rtol=1e-3
        )
        assert np.allclose(
            parsed.declared_peak_bitrates_bps, manifest.declared_peak_bitrates_bps, rtol=1e-3
        )

    def test_rejects_non_mpd(self):
        with pytest.raises(ValueError, match="MPD"):
            manifest_from_mpd("<html></html>")

    def test_parsed_manifest_streams(self, manifest, one_lte_trace):
        """A parsed manifest drives a real session identically."""
        from repro.core.cava import cava_p123
        from repro.network.link import TraceLink
        from repro.player.session import StreamingSession

        parsed = manifest_from_mpd(manifest_to_mpd(manifest))
        session = StreamingSession()
        original = session.run(cava_p123(), manifest, TraceLink(one_lte_trace))
        replayed = session.run(cava_p123(), parsed, TraceLink(one_lte_trace))
        assert np.array_equal(original.levels, replayed.levels)


class TestHlsRoundTrip:
    def test_round_trip_exact(self, manifest):
        files = manifest_to_hls(manifest)
        parsed = manifest_from_hls(files)
        assert parsed.num_tracks == manifest.num_tracks
        assert parsed.num_chunks == manifest.num_chunks
        assert np.allclose(parsed.chunk_sizes_bits, manifest.chunk_sizes_bits, rtol=1e-6)
        assert parsed.resolutions == manifest.resolutions

    def test_master_lists_all_variants(self, manifest):
        files = manifest_to_hls(manifest)
        master = files["master.m3u8"]
        assert master.count("#EXT-X-STREAM-INF") == manifest.num_tracks
        assert "AVERAGE-BANDWIDTH" in master and "BANDWIDTH" in master

    def test_media_playlists_terminated(self, manifest):
        files = manifest_to_hls(manifest)
        for name, contents in files.items():
            if name != "master.m3u8":
                assert contents.rstrip().endswith("#EXT-X-ENDLIST")

    def test_missing_master_rejected(self):
        with pytest.raises(ValueError, match="master"):
            manifest_from_hls({})

    def test_missing_media_playlist_rejected(self, manifest):
        files = manifest_to_hls(manifest)
        del files["track0.m3u8"]
        with pytest.raises(ValueError, match="track0"):
            manifest_from_hls(files)
