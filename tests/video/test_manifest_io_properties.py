"""Hypothesis property tests: MPD/HLS round-trips over random manifests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.manifest_io import (
    manifest_from_hls,
    manifest_from_mpd,
    manifest_to_hls,
    manifest_to_mpd,
)
from repro.video.model import Manifest

RESOLUTIONS = (144, 240, 360, 480, 720, 1080)


@st.composite
def manifests(draw):
    num_tracks = draw(st.integers(min_value=1, max_value=6))
    num_chunks = draw(st.integers(min_value=1, max_value=40))
    duration = draw(st.sampled_from([2.0, 5.0, 6.0]))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10_000)))
    base = rng.uniform(5e4, 5e6, size=num_tracks)
    base.sort()
    sizes = np.stack(
        [base[k] * duration * rng.uniform(0.5, 2.0, size=num_chunks) for k in range(num_tracks)]
    )
    return Manifest(
        video_name=draw(st.sampled_from(["v", "video-1", "ED youtube"])),
        chunk_duration_s=duration,
        chunk_sizes_bits=sizes,
        declared_avg_bitrates_bps=base,
        declared_peak_bitrates_bps=base * 2.0,
        resolutions=tuple(RESOLUTIONS[:num_tracks]),
    )


@given(manifests())
@settings(max_examples=30, deadline=None)
def test_property_mpd_round_trip(manifest):
    parsed = manifest_from_mpd(manifest_to_mpd(manifest))
    assert parsed.num_tracks == manifest.num_tracks
    assert parsed.num_chunks == manifest.num_chunks
    assert parsed.chunk_duration_s == pytest.approx(manifest.chunk_duration_s, rel=1e-3)
    assert np.allclose(parsed.chunk_sizes_bits, manifest.chunk_sizes_bits, rtol=1e-6)
    assert parsed.resolutions == manifest.resolutions
    assert parsed.video_name == manifest.video_name


@given(manifests())
@settings(max_examples=30, deadline=None)
def test_property_hls_round_trip(manifest):
    parsed = manifest_from_hls(manifest_to_hls(manifest))
    assert parsed.num_tracks == manifest.num_tracks
    assert parsed.num_chunks == manifest.num_chunks
    assert np.allclose(parsed.chunk_sizes_bits, manifest.chunk_sizes_bits, rtol=1e-6)
    assert np.allclose(
        parsed.declared_avg_bitrates_bps, manifest.declared_avg_bitrates_bps, rtol=1e-3
    )
