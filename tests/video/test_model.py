"""Tests for repro.video.model: Track, VideoAsset, Manifest."""

import numpy as np
import pytest

from repro.video.model import Track, VideoAsset


def make_track(level=0, resolution=480, sizes=None, duration=2.0):
    sizes = np.array([1e6, 2e6, 3e6, 4e6]) if sizes is None else np.asarray(sizes, float)
    return Track(
        level=level,
        resolution=resolution,
        chunk_sizes_bits=sizes,
        chunk_duration_s=duration,
        declared_avg_bitrate_bps=float(np.mean(sizes)) / duration,
        qualities={"vmaf_phone": np.linspace(50, 80, sizes.size)},
    )


class TestTrack:
    def test_basic_properties(self):
        track = make_track()
        assert track.num_chunks == 4
        assert track.duration_s == 8.0
        assert track.chunk_bitrate_bps(1) == pytest.approx(1e6)
        assert track.average_bitrate_bps == pytest.approx(2.5e6 / 2.0)

    def test_peak_and_cov(self):
        track = make_track()
        assert track.peak_bitrate_bps == pytest.approx(2e6)
        assert track.peak_to_average_ratio == pytest.approx(1.6)
        assert track.bitrate_cov > 0

    def test_quality_lookup(self):
        track = make_track()
        assert track.quality("vmaf_phone", 0) == pytest.approx(50.0)

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError, match="vmaf_tv"):
            make_track().quality("vmaf_tv", 0)

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError, match="non-empty"):
            make_track(sizes=[])

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError, match="positive"):
            make_track(sizes=[1e6, 0.0])

    def test_rejects_mismatched_quality_shape(self):
        with pytest.raises(ValueError, match="shape"):
            Track(
                level=0,
                resolution=480,
                chunk_sizes_bits=np.array([1e6, 2e6]),
                chunk_duration_s=2.0,
                declared_avg_bitrate_bps=1e6,
                qualities={"vmaf_phone": np.array([1.0])},
            )


def make_video(num_tracks=3, n=4):
    tracks = [
        make_track(level=k, resolution=[144, 480, 1080][k], sizes=np.linspace(1, 4, n) * 1e6 * (k + 1))
        for k in range(num_tracks)
    ]
    return VideoAsset(
        name="v",
        genre="animation",
        codec="h264",
        source="ffmpeg",
        tracks=tracks,
        complexity=np.linspace(0, 1, n),
        si=np.linspace(10, 60, n),
        ti=np.linspace(1, 20, n),
        cap_ratio=2.0,
    )


class TestVideoAsset:
    def test_shape_checks(self):
        video = make_video()
        assert video.num_tracks == 3
        assert video.num_chunks == 4
        assert video.duration_s == 8.0

    def test_track_out_of_range(self):
        with pytest.raises(IndexError):
            make_video().track(3)

    def test_chunk_size_lookup(self):
        video = make_video()
        assert video.chunk_size_bits(1, 0) == pytest.approx(2e6)

    def test_mismatched_chunk_counts_rejected(self):
        tracks = [make_track(level=0), make_track(level=1, sizes=[1e6, 2e6])]
        with pytest.raises(ValueError, match="same chunk count"):
            VideoAsset(
                name="v", genre="animation", codec="h264", source="ffmpeg",
                tracks=tracks,
                complexity=np.zeros(4), si=np.zeros(4), ti=np.zeros(4),
                cap_ratio=2.0,
            )

    def test_invalid_encoding_rejected(self):
        with pytest.raises(ValueError, match="encoding"):
            VideoAsset(
                name="v", genre="animation", codec="h264", source="ffmpeg",
                tracks=[make_track()],
                complexity=np.zeros(4), si=np.zeros(4), ti=np.zeros(4),
                cap_ratio=2.0, encoding="abr",
            )

    def test_describe_mentions_tracks(self):
        text = make_video().describe()
        assert "L0" in text and "1080p" in text


class TestManifest:
    def test_default_has_no_quality(self):
        manifest = make_video().manifest()
        assert not manifest.has_quality
        with pytest.raises(ValueError, match="quality"):
            manifest.quality_value("vmaf_phone", 0, 0)

    def test_quality_included_on_request(self):
        manifest = make_video().manifest(include_quality=True)
        assert manifest.has_quality
        assert manifest.quality_value("vmaf_phone", 0, 0) == pytest.approx(50.0)

    def test_shapes(self):
        manifest = make_video().manifest()
        assert manifest.num_tracks == 3
        assert manifest.num_chunks == 4
        assert manifest.chunk_sizes_bits.shape == (3, 4)

    def test_bitrate_accessors(self):
        manifest = make_video().manifest()
        assert manifest.chunk_bitrate_bps(0, 1) == pytest.approx(1e6)
        assert manifest.track_bitrates_bps(0).shape == (4,)

    def test_matches_video_ground_truth(self, ed_ffmpeg_video):
        manifest = ed_ffmpeg_video.manifest()
        assert manifest.chunk_size_bits(3, 10) == pytest.approx(
            ed_ffmpeg_video.chunk_size_bits(3, 10)
        )
