"""Tests for repro.video.quality: the rate-quality surfaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.quality import (
    DEFAULT_QUALITY_MODEL,
    RESOLUTION_PIXELS,
    QualityModel,
    complexity_bit_demand,
)

MODEL = DEFAULT_QUALITY_MODEL


class TestComplexityBitDemand:
    def test_reference_point(self):
        assert complexity_bit_demand(0.35) == pytest.approx(1.0)

    def test_monotone_increasing(self):
        values = [complexity_bit_demand(c) for c in np.linspace(0, 1, 11)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            complexity_bit_demand(1.5)


class TestLatentScore:
    def test_monotone_in_bits(self):
        low = MODEL.latent_score(480, 1e6, 2.0, 0.5)
        high = MODEL.latent_score(480, 4e6, 2.0, 0.5)
        assert high > low

    def test_decreasing_in_complexity_at_fixed_bits(self):
        simple = MODEL.latent_score(480, 2e6, 2.0, 0.2)
        complex_ = MODEL.latent_score(480, 2e6, 2.0, 0.8)
        assert simple > complex_

    def test_bounded(self):
        for bits in (1e4, 1e6, 1e9):
            score = MODEL.latent_score(480, bits, 2.0, 0.5)
            assert 0.0 < score < 1.0

    def test_hardness_ceiling_binds_at_high_complexity(self):
        """Even enormous bitrates cannot buy full quality for the most
        complex scenes (the §3.3 observation)."""
        score = MODEL.latent_score(1080, 1e10, 2.0, 0.95)
        assert score < 1.0 - 0.5 * MODEL.hardness

    def test_unknown_resolution_rejected(self):
        with pytest.raises(ValueError, match="resolution"):
            MODEL.latent_score(333, 1e6, 2.0, 0.5)

    def test_hardness_ceiling_monotone(self):
        ceilings = [MODEL.hardness_ceiling(c) for c in np.linspace(0, 1, 11)]
        assert all(b <= a for a, b in zip(ceilings, ceilings[1:]))


class TestMetricSurfaces:
    def test_vmaf_range(self):
        value = MODEL.vmaf(1080, 1e7, 2.0, 0.3, "tv")
        assert 0.0 <= value <= 100.0

    def test_phone_more_forgiving_at_low_resolution(self):
        """VMAF's phone model scores low resolutions higher than the TV
        model (small screen hides upscaling)."""
        tv = MODEL.vmaf(240, 5e5, 2.0, 0.4, "tv")
        phone = MODEL.vmaf(240, 5e5, 2.0, 0.4, "phone")
        assert phone > tv

    def test_models_agree_at_1080p(self):
        tv = MODEL.vmaf(1080, 1e7, 2.0, 0.4, "tv")
        phone = MODEL.vmaf(1080, 1e7, 2.0, 0.4, "phone")
        assert tv == pytest.approx(phone)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            MODEL.vmaf(480, 1e6, 2.0, 0.4, "cinema")

    def test_psnr_plausible_range(self):
        value = MODEL.psnr(1080, 1e7, 2.0, 0.3)
        assert 26.0 <= value <= 50.0

    def test_ssim_plausible_range(self):
        value = MODEL.ssim(1080, 1e7, 2.0, 0.3)
        assert 0.70 <= value <= 1.0

    def test_all_metrics_keys(self):
        metrics = MODEL.all_metrics(480, 1e6, 2.0, 0.5)
        assert set(metrics) == {"vmaf_tv", "vmaf_phone", "psnr", "ssim"}

    def test_higher_resolution_wins_at_generous_bitrate(self):
        """With plenty of bits, a higher-resolution track scores higher."""
        low = MODEL.vmaf(480, 4e7, 2.0, 0.4, "tv")
        high = MODEL.vmaf(1080, 4e7, 2.0, 0.4, "tv")
        assert high > low


class TestBitsForLatent:
    def test_round_trip(self):
        for c in (0.1, 0.4, 0.6):
            bits = MODEL.bits_for_latent(480, 2.0, c, 0.7)
            assert MODEL.latent_score(480, bits, 2.0, c) == pytest.approx(0.7, abs=1e-6)

    def test_unreachable_target_saturates(self):
        """When hardness makes the target unreachable, the encoder spends
        the near-saturation budget rather than diverging."""
        bits = MODEL.bits_for_latent(480, 2.0, 0.95, 0.9)
        assert np.isfinite(bits) and bits > 0

    def test_complexity_raises_cost(self):
        cheap = MODEL.bits_for_latent(480, 2.0, 0.2, 0.6)
        costly = MODEL.bits_for_latent(480, 2.0, 0.8, 0.6)
        assert costly > cheap

    def test_invalid_latent_rejected(self):
        with pytest.raises(ValueError):
            MODEL.bits_for_latent(480, 2.0, 0.5, 1.0)

    @given(
        c=st.floats(min_value=0.0, max_value=1.0),
        latent=st.floats(min_value=0.05, max_value=0.8),
    )
    @settings(max_examples=40)
    def test_property_round_trip_when_reachable(self, c, latent):
        ceiling = MODEL.hardness_ceiling(c)
        if latent / ceiling >= 0.95:  # saturation region: inversion is lossy
            return
        bits = MODEL.bits_for_latent(720, 2.0, c, latent)
        assert MODEL.latent_score(720, bits, 2.0, c) == pytest.approx(latent, rel=1e-4)


class TestConfigValidation:
    def test_bad_hardness_rejected(self):
        with pytest.raises(ValueError):
            QualityModel(hardness=0.9)

    def test_bad_fps_rejected(self):
        with pytest.raises(ValueError):
            QualityModel(frames_per_second=0)

    def test_resolution_table_complete(self):
        for resolution in (144, 240, 360, 480, 720, 1080, 2160):
            assert resolution in RESOLUTION_PIXELS
