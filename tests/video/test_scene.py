"""Tests for repro.video.scene: timelines, genres, SI/TI synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import derive_rng
from repro.video.scene import (
    GENRE_PROFILES,
    GenreProfile,
    synthesize_scene_timeline,
)


def make_timeline(genre="animation", duration=300.0, chunk=2.0, seed=0):
    return synthesize_scene_timeline(derive_rng(seed, "t"), genre, duration, chunk)


class TestTimelineShape:
    def test_chunk_count(self):
        tl = make_timeline(duration=300.0, chunk=2.0)
        assert tl.num_chunks == 150
        assert tl.complexity.shape == (150,)
        assert tl.si.shape == (150,)
        assert tl.ti.shape == (150,)
        assert tl.texture.shape == (150,)

    def test_complexity_in_unit_interval(self):
        tl = make_timeline()
        assert tl.complexity.min() >= 0.0
        assert tl.complexity.max() <= 1.0

    def test_texture_positive(self):
        tl = make_timeline()
        assert np.all(tl.texture > 0)

    def test_scene_ids_monotone(self):
        tl = make_timeline()
        assert np.all(np.diff(tl.scene_ids) >= 0)
        assert tl.num_scenes >= 2

    def test_deterministic(self):
        a = make_timeline(seed=5)
        b = make_timeline(seed=5)
        assert np.array_equal(a.complexity, b.complexity)
        assert np.array_equal(a.si, b.si)

    def test_seed_changes_output(self):
        a = make_timeline(seed=1)
        b = make_timeline(seed=2)
        assert not np.array_equal(a.complexity, b.complexity)


class TestGenres:
    def test_all_genres_work(self):
        for genre in GENRE_PROFILES:
            tl = make_timeline(genre=genre)
            assert tl.genre == genre

    def test_unknown_genre_rejected(self):
        with pytest.raises(ValueError, match="unknown genre"):
            make_timeline(genre="opera")

    def test_sports_more_complex_than_nature(self):
        """Genre profiles must order mean complexity sensibly."""
        sports = make_timeline(genre="sports", duration=600.0)
        nature = make_timeline(genre="nature", duration=600.0)
        assert sports.complexity.mean() > nature.complexity.mean()

    def test_si_ti_correlate_with_complexity(self):
        tl = make_timeline(duration=600.0)
        assert np.corrcoef(tl.complexity, tl.si)[0, 1] > 0.5
        assert np.corrcoef(tl.complexity, tl.ti)[0, 1] > 0.5

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            GenreProfile(-1.0, 2.0, 5.0, 0.5, 1.0)


class TestInputValidation:
    def test_chunk_longer_than_video_rejected(self):
        with pytest.raises(ValueError, match="chunk_duration_s"):
            make_timeline(duration=2.0, chunk=5.0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            make_timeline(duration=0.0)


@given(
    genre=st.sampled_from(sorted(GENRE_PROFILES)),
    duration=st.floats(min_value=30.0, max_value=400.0),
    chunk=st.sampled_from([2.0, 5.0]),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=20, deadline=None)
def test_property_valid_timeline_for_any_input(genre, duration, chunk, seed):
    """Any valid (genre, duration, chunk, seed) yields a consistent timeline."""
    tl = synthesize_scene_timeline(derive_rng(seed, "p"), genre, duration, chunk)
    assert tl.num_chunks == int(round(duration / chunk))
    assert np.all((tl.complexity >= 0) & (tl.complexity <= 1))
    assert np.all(tl.si >= 0) and np.all(tl.si <= 100)
    assert np.all(tl.ti >= 0) and np.all(tl.ti <= 70)
    # Scene ids index the scene list; very short opening scenes may hold no
    # chunk midpoint, so the minimum need not be 0 — but ids are monotone.
    assert tl.scene_ids.min() >= 0
    assert np.all(np.diff(tl.scene_ids) >= 0)
