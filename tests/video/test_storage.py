"""Tests for dataset persistence (.npz)."""

import numpy as np
import pytest

from repro.video.storage import load_dataset, load_video, save_dataset, save_video


class TestVideoRoundTrip:
    def test_exact_round_trip(self, ed_youtube_video, tmp_path):
        path = tmp_path / "video.npz"
        save_video(ed_youtube_video, path)
        loaded = load_video(path)
        assert loaded.name == ed_youtube_video.name
        assert loaded.genre == ed_youtube_video.genre
        assert loaded.codec == ed_youtube_video.codec
        assert loaded.encoding == ed_youtube_video.encoding
        assert loaded.cap_ratio == ed_youtube_video.cap_ratio
        for level in range(6):
            assert np.array_equal(
                loaded.track(level).chunk_sizes_bits,
                ed_youtube_video.track(level).chunk_sizes_bits,
            )
            for metric in ("vmaf_phone", "psnr"):
                assert np.array_equal(
                    loaded.track(level).qualities[metric],
                    ed_youtube_video.track(level).qualities[metric],
                )
        assert np.array_equal(loaded.complexity, ed_youtube_video.complexity)
        assert np.array_equal(loaded.si, ed_youtube_video.si)

    def test_loaded_video_streams_identically(self, ed_youtube_video, tmp_path, one_lte_trace):
        from repro.core.cava import cava_p123
        from repro.network.link import TraceLink
        from repro.player.session import run_session

        path = tmp_path / "video.npz"
        save_video(ed_youtube_video, path)
        loaded = load_video(path)
        a = run_session(cava_p123(), ed_youtube_video, TraceLink(one_lte_trace))
        b = run_session(cava_p123(), loaded, TraceLink(one_lte_trace))
        assert np.array_equal(a.levels, b.levels)

    def test_unsupported_version_rejected(self, ed_youtube_video, tmp_path):
        path = tmp_path / "video.npz"
        save_video(ed_youtube_video, path)
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["format_version"] = np.array(99)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_video(path)


class TestDatasetRoundTrip:
    def test_save_and_load_directory(self, ed_youtube_video, short_video, tmp_path):
        videos = {v.name: v for v in (ed_youtube_video, short_video)}
        save_dataset(videos, tmp_path / "dataset")
        loaded = load_dataset(tmp_path / "dataset")
        assert set(loaded) == set(videos)

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="no .npz"):
            load_dataset(tmp_path / "empty")
