"""Tests for repro.video.synthesis: cap water-filling and the encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import derive_rng
from repro.video.scene import synthesize_scene_timeline
from repro.video.synthesis import (
    CODEC_EFFICIENCY,
    EncoderConfig,
    apply_bitrate_cap,
    encode_ladder,
    encode_track_cbr,
    encode_track_vbr,
)


@pytest.fixture(scope="module")
def timeline():
    return synthesize_scene_timeline(derive_rng(0, "enc-test"), "animation", 240.0, 2.0)


class TestApplyBitrateCap:
    def test_no_op_below_cap(self):
        bits = np.array([1.0, 1.1, 0.9])
        out = apply_bitrate_cap(bits, cap_ratio=2.0)
        assert np.allclose(out, bits)

    def test_cap_enforced(self):
        bits = np.array([1.0, 1.0, 10.0])
        out = apply_bitrate_cap(bits, cap_ratio=1.5)
        assert out.max() <= 1.5 * bits.mean() + 1e-9

    def test_total_preserved_when_headroom_exists(self):
        bits = np.array([1.0, 1.0, 1.0, 9.0])
        out = apply_bitrate_cap(bits, cap_ratio=2.0)
        assert out.sum() == pytest.approx(bits.sum())

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            apply_bitrate_cap(np.array([1.0, -1.0]), 2.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            apply_bitrate_cap(np.ones((2, 2)), 2.0)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=4, max_size=50),
        st.floats(min_value=1.1, max_value=4.0),
    )
    @settings(max_examples=60)
    def test_property_cap_and_budget(self, values, cap):
        bits = np.array(values)
        out = apply_bitrate_cap(bits, cap)
        # Cap holds relative to the ORIGINAL mean (total is preserved or
        # reduced, never increased).
        assert out.max() <= cap * bits.mean() * (1 + 1e-9)
        assert out.sum() <= bits.sum() * (1 + 1e-9)
        assert np.all(out > 0)


class TestVbrEncoder:
    def test_track_shape(self, timeline):
        track = encode_track_vbr(derive_rng(0, "t"), timeline, 480, 3, EncoderConfig())
        assert track.num_chunks == timeline.num_chunks
        assert track.resolution == 480
        assert set(track.qualities) == {"vmaf_tv", "vmaf_phone", "psnr", "ssim"}

    def test_sizes_track_complexity(self, timeline):
        """Property 1 of §3.1.1: bigger chunks for more complex scenes."""
        track = encode_track_vbr(derive_rng(0, "t"), timeline, 480, 3, EncoderConfig())
        corr = np.corrcoef(track.chunk_sizes_bits, timeline.complexity)[0, 1]
        assert corr > 0.7

    def test_peak_respects_cap_approximately(self, timeline):
        """Encoder noise may exceed the nominal cap slightly (§2 observes
        up to 2.4x for a 2x cap) but not wildly."""
        track = encode_track_vbr(derive_rng(0, "t"), timeline, 480, 3, EncoderConfig(cap_ratio=2.0))
        assert track.peak_to_average_ratio < 2.5

    def test_h265_smaller_than_h264(self, timeline):
        h264 = encode_track_vbr(derive_rng(0, "a"), timeline, 480, 3, EncoderConfig(codec="h264"))
        h265 = encode_track_vbr(derive_rng(0, "a"), timeline, 480, 3, EncoderConfig(codec="h265"))
        ratio = h265.average_bitrate_bps / h264.average_bitrate_bps
        assert 0.55 < ratio < 0.75  # ~the 0.65 efficiency factor

    def test_h265_similar_quality_to_h264(self, timeline):
        """§6.5's premise: H.265 reaches H.264 quality at lower bitrate."""
        h264 = encode_track_vbr(derive_rng(0, "a"), timeline, 480, 3, EncoderConfig(codec="h264"))
        h265 = encode_track_vbr(derive_rng(0, "a"), timeline, 480, 3, EncoderConfig(codec="h265"))
        gap = np.mean(h264.qualities["vmaf_phone"]) - np.mean(h265.qualities["vmaf_phone"])
        assert abs(gap) < 3.0

    def test_deterministic(self, timeline):
        a = encode_track_vbr(derive_rng(3, "x"), timeline, 480, 3, EncoderConfig())
        b = encode_track_vbr(derive_rng(3, "x"), timeline, 480, 3, EncoderConfig())
        assert np.array_equal(a.chunk_sizes_bits, b.chunk_sizes_bits)

    def test_unknown_resolution_rejected(self, timeline):
        with pytest.raises(ValueError, match="resolution"):
            encode_track_vbr(derive_rng(0, "t"), timeline, 999, 0, EncoderConfig())


class TestCbrEncoder:
    def test_nearly_constant_sizes(self, timeline):
        track = encode_track_cbr(derive_rng(0, "c"), timeline, 480, 3, EncoderConfig())
        assert track.bitrate_cov < 0.05

    def test_same_budget_as_vbr(self, timeline):
        vbr = encode_track_vbr(derive_rng(0, "c"), timeline, 480, 3, EncoderConfig())
        cbr = encode_track_cbr(derive_rng(0, "c"), timeline, 480, 3, EncoderConfig())
        assert cbr.average_bitrate_bps == pytest.approx(vbr.average_bitrate_bps, rel=0.05)

    def test_vbr_beats_cbr_on_complex_scenes(self, timeline):
        """The §1 motivation: at equal average bitrate, VBR delivers
        better quality for complex scenes than CBR."""
        vbr = encode_track_vbr(derive_rng(0, "c"), timeline, 480, 3, EncoderConfig())
        cbr = encode_track_cbr(derive_rng(0, "c"), timeline, 480, 3, EncoderConfig())
        complex_mask = timeline.complexity > np.quantile(timeline.complexity, 0.75)
        vbr_q = np.mean(vbr.qualities["vmaf_phone"][complex_mask])
        cbr_q = np.mean(cbr.qualities["vmaf_phone"][complex_mask])
        assert vbr_q > cbr_q


class TestEncodeLadder:
    def test_six_tracks_ascending(self, timeline):
        tracks = encode_ladder(derive_rng(0, "l"), timeline, EncoderConfig())
        assert len(tracks) == 6
        rates = [t.average_bitrate_bps for t in tracks]
        assert rates == sorted(rates)
        assert [t.level for t in tracks] == list(range(6))

    def test_cbr_ladder(self, timeline):
        tracks = encode_ladder(derive_rng(0, "l"), timeline, EncoderConfig(), encoding="cbr")
        assert all(t.bitrate_cov < 0.05 for t in tracks)

    def test_invalid_encoding_rejected(self, timeline):
        with pytest.raises(ValueError, match="encoding"):
            encode_ladder(derive_rng(0, "l"), timeline, EncoderConfig(), encoding="vbr2")

    def test_low_tracks_least_variable(self, timeline):
        """§2: the two lowest tracks have the lowest bitrate variability."""
        tracks = encode_ladder(derive_rng(0, "l"), timeline, EncoderConfig())
        covs = [t.bitrate_cov for t in tracks]
        assert covs[0] <= max(covs[2:]) and covs[1] <= max(covs[2:])


class TestEncoderConfig:
    def test_bad_codec_rejected(self):
        with pytest.raises(ValueError, match="codec"):
            EncoderConfig(codec="av1")

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            EncoderConfig(cap_ratio=0.5)

    def test_codec_efficiency_table(self):
        assert EncoderConfig(codec="h264").codec_efficiency == 1.0
        assert EncoderConfig(codec="h265").codec_efficiency == CODEC_EFFICIENCY["h265"]
