#!/usr/bin/env python
"""Repo-local unused-import checker (pyflakes F401 subset, zero deps).

The container this repo grows in has no ``ruff``/``pyflakes``; CI uses
ruff when available and falls back to this script, so both environments
enforce the same floor. Usage::

    python tools/check_imports.py src tests benchmarks examples tools

Rules:

- an import is *used* if its bound name appears anywhere in the module
  outside the import statements themselves (including inside strings is
  NOT counted — we walk the AST, not the text);
- names re-exported via ``__all__`` count as used (package ``__init__``
  convention);
- ``import x as x`` / ``from m import x as x`` (PEP 484 re-export) and
  ``from __future__ import ...`` are always allowed;
- a trailing ``# noqa`` comment on the import line suppresses the check.

Exit status is the number of offending imports (0 = clean).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Set, Tuple


def _bound_name(alias: ast.alias) -> str:
    """The local name an import alias binds (``a.b`` binds ``a``)."""
    if alias.asname:
        return alias.asname
    return alias.name.split(".")[0]


class _UsageCollector(ast.NodeVisitor):
    """Collect every identifier read anywhere outside import statements."""

    def __init__(self) -> None:
        self.used: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        pass  # the import itself is not a use

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        pass

    def visit_Name(self, node: ast.Name) -> None:
        self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)


def _exported_names(tree: ast.Module) -> Set[str]:
    """Literal strings assigned to ``__all__`` at module top level."""
    exported: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    exported.add(element.value)
    return exported


def check_file(path: Path) -> List[Tuple[int, str]]:
    """Return (line, name) for every unused import in ``path``."""
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(exc.lineno or 0, f"<syntax error: {exc.msg}>")]
    lines = source.splitlines()

    collector = _UsageCollector()
    collector.visit(tree)
    used = collector.used | _exported_names(tree)

    problems: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        line_text = lines[node.lineno - 1] if node.lineno - 1 < len(lines) else ""
        if "# noqa" in line_text:
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            if alias.asname and alias.asname == alias.name:
                continue  # explicit re-export
            name = _bound_name(alias)
            if name not in used:
                problems.append((node.lineno, name))
    return problems


def main(argv: Iterable[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src")]
    count = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            for lineno, name in check_file(path):
                print(f"{path}:{lineno}: unused import {name!r}")
                count += 1
    if count:
        print(f"\n{count} unused import(s) found", file=sys.stderr)
    return count


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
