"""Regenerate the fleet bit-identity golden file.

Runs the *default small fleet spec* (a scaled-down cut of the
BENCH_fleet acceptance spec: same seed, same flash-crowd shape) under
every (start method, worker count) combination the pin test asserts,
checks they all agree, and writes the shared digest to
``tests/fleet/golden_fleet_fingerprint.json``.

Run this ONLY when a PR intentionally changes the simulated numbers;
performance PRs must leave the golden untouched. With ``--full`` it
also (re)captures the digest of the full acceptance-scale spec (seed 0,
24 edges, ~152k sessions) from one serial run — slow, used by the
env-gated full-scale pin test and for pre/post verification of hot-path
work.

Usage::

    PYTHONPATH=src python tools/fleet_golden.py [--full]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fleet import FlashCrowd, FleetSpec, run_fleet
from repro.fleet.fingerprint import fleet_fingerprint

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "fleet"
    / "golden_fleet_fingerprint.json"
)

#: The pin matrix: both multiprocessing start methods at 1 and 2 workers.
MATRIX = tuple(
    (method, workers) for method in ("fork", "spawn") for workers in (1, 2)
)


def small_spec() -> FleetSpec:
    """Default small fleet spec (the bench's correctness-gate spec)."""
    return FleetSpec(
        seed=0,
        duration_s=420.0,
        n_edges=4,
        arrivals_per_s=1.0,
        flash_crowds=(
            FlashCrowd(start_s=252.0, duration_s=84.0, multiplier=6.0),
        ),
    )


def full_spec() -> FleetSpec:
    """The acceptance-scale spec behind BENCH_fleet.json."""
    return FleetSpec(
        seed=0,
        duration_s=5400.0,
        n_edges=24,
        arrivals_per_s=20.0,
        flash_crowds=(
            FlashCrowd(start_s=3240.0, duration_s=300.0, multiplier=6.0),
        ),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="also capture the full acceptance-scale digest (slow)",
    )
    args = parser.parse_args(argv)

    golden = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}

    spec = small_spec()
    prints = {}
    for method, workers in MATRIX:
        result = run_fleet(spec, n_workers=workers, mp_context=method)
        prints[f"{method}/w{workers}"] = fleet_fingerprint(result)
    digests = {fp["digest"] for fp in prints.values()}
    if len(digests) != 1:
        print("FATAL: start methods / worker counts disagree:", file=sys.stderr)
        for key, fp in prints.items():
            print(f"  {key}: {fp['digest']}", file=sys.stderr)
        return 1
    sample = next(iter(prints.values()))
    golden["small"] = {
        "spec": {
            "seed": spec.seed,
            "duration_s": spec.duration_s,
            "n_edges": spec.n_edges,
            "arrivals_per_s": spec.arrivals_per_s,
        },
        "matrix": sorted(prints),
        "digest": sample["digest"],
        "scalars": {
            k: (v if isinstance(v, (int, str)) else repr(v))
            for k, v in sample["scalars"].items()
        },
    }

    if args.full:
        spec = full_spec()
        fp = fleet_fingerprint(run_fleet(spec, n_workers=1))
        golden["full"] = {
            "spec": {
                "seed": spec.seed,
                "duration_s": spec.duration_s,
                "n_edges": spec.n_edges,
                "arrivals_per_s": spec.arrivals_per_s,
            },
            "digest": fp["digest"],
            "scalars": {
                k: (v if isinstance(v, (int, str)) else repr(v))
                for k, v in fp["scalars"].items()
            },
        }

    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for section in ("small", "full"):
        if section in golden:
            print(f"  {section}: {golden[section]['digest']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
