#!/usr/bin/env python
"""Regenerate the golden session snapshots under tests/integration/golden/.

Run this ONLY when a change is *supposed* to alter simulation results
(new scheme semantics, a deliberate model fix). Performance work must
never need it — the whole point of the snapshots is to prove optimized
code bit-identical to the code that wrote them.

Usage::

    PYTHONPATH=src python tools/make_golden_snapshots.py
"""

from __future__ import annotations

import json
import sys

from repro.abr.registry import scheme_names
from repro.experiments.golden import (
    golden_dir,
    golden_path,
    golden_session,
    golden_trace,
    golden_video,
)


def main() -> int:
    video = golden_video()
    trace = golden_trace()
    golden_dir().mkdir(parents=True, exist_ok=True)
    for scheme in scheme_names():
        result = golden_session(scheme, video, trace)
        path = golden_path(scheme)
        path.write_text(json.dumps(result.to_dict(), indent=None) + "\n")
        print(f"wrote {path.name}: {result.num_chunks} chunks, "
              f"stall {result.total_stall_s:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
